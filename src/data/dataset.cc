#include "data/dataset.h"

#include <cstring>
#include <fstream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace sp::data
{

namespace
{

constexpr uint64_t kMagic = 0x5343525450495045ull; // "SCRTPIPE"
constexpr uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::ifstream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

} // namespace

TraceDataset::TraceDataset(const TraceConfig &config, uint64_t num_batches)
    : config_(config), generator_(config)
{
    fatalIf(num_batches == 0, "dataset needs at least one batch");
    // Each batch is an independent seeded stream (deterministic per
    // index, see trace.h), so generation parallelises with
    // bit-identical results: worker i only writes batches_[i].
    batches_.resize(num_batches);
    common::parallelFor(num_batches, [this](size_t i) {
        batches_[i] = generator_.makeBatch(i);
    });
}

TraceDataset::TraceDataset(const TraceConfig &config,
                           std::vector<MiniBatch> batches)
    : config_(config), generator_(config), batches_(std::move(batches))
{
    fatalIf(batches_.empty(), "dataset needs at least one batch");
}

const MiniBatch &
TraceDataset::batch(uint64_t index) const
{
    panicIf(index >= batches_.size(), "batch index ", index,
            " out of range (", batches_.size(), " batches)");
    return batches_[index];
}

const MiniBatch *
TraceDataset::lookAhead(uint64_t index, uint64_t distance) const
{
    const uint64_t target = index + distance;
    if (target >= batches_.size())
        return nullptr;
    return &batches_[target];
}

tensor::Matrix
TraceDataset::denseFeatures(uint64_t index) const
{
    return generator_.makeDenseFeatures(index);
}

tensor::Matrix
TraceDataset::labels(uint64_t index) const
{
    return generator_.makeLabels(index);
}

void
TraceDataset::save(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open '", path, "' for writing");

    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, static_cast<uint64_t>(config_.num_tables));
    writePod(os, config_.rows_per_table);
    writePod(os, static_cast<uint64_t>(config_.lookups_per_table));
    writePod(os, static_cast<uint64_t>(config_.batch_size));
    writePod(os, static_cast<uint64_t>(config_.locality));
    writePod(os, config_.seed);
    writePod(os, static_cast<uint64_t>(config_.dense_features));
    writePod(os, static_cast<uint64_t>(batches_.size()));

    for (const auto &batch : batches_) {
        writePod(os, batch.index);
        for (const auto &ids : batch.table_ids) {
            os.write(reinterpret_cast<const char *>(ids.data()),
                     static_cast<std::streamsize>(ids.size() *
                                                  sizeof(uint32_t)));
        }
    }
    fatalIf(!os, "I/O error while writing '", path, "'");
}

TraceDataset
TraceDataset::load(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open '", path, "' for reading");

    uint64_t magic = 0;
    uint32_t version = 0;
    readPod(is, magic);
    readPod(is, version);
    fatalIf(magic != kMagic, "'", path, "' is not a ScratchPipe trace");
    fatalIf(version != kVersion, "unsupported trace version ", version);

    TraceConfig config;
    uint64_t num_tables = 0, lookups = 0, batch_size = 0, locality = 0;
    uint64_t dense = 0, num_batches = 0;
    readPod(is, num_tables);
    readPod(is, config.rows_per_table);
    readPod(is, lookups);
    readPod(is, batch_size);
    readPod(is, locality);
    readPod(is, config.seed);
    readPod(is, dense);
    readPod(is, num_batches);
    // Fail before acting on garbage counts: a file cut inside the
    // header would otherwise drive the reserve/read loop below with
    // whatever bytes happened to be there.
    fatalIf(!is, "'", path, "' is truncated inside the trace header");
    config.num_tables = num_tables;
    config.lookups_per_table = lookups;
    config.batch_size = batch_size;
    config.locality = static_cast<Locality>(locality);
    config.dense_features = dense;

    std::vector<MiniBatch> batches;
    batches.reserve(num_batches);
    const size_t ids_per_table = config.idsPerTable();
    for (uint64_t b = 0; b < num_batches; ++b) {
        MiniBatch batch;
        readPod(is, batch.index);
        batch.batch_size = config.batch_size;
        batch.lookups_per_table = config.lookups_per_table;
        batch.table_ids.resize(config.num_tables);
        for (auto &ids : batch.table_ids) {
            ids.resize(ids_per_table);
            is.read(reinterpret_cast<char *>(ids.data()),
                    static_cast<std::streamsize>(ids.size() *
                                                 sizeof(uint32_t)));
        }
        // Per-batch check so truncation fails at the cut, not after
        // looping num_batches times over a dead stream.
        fatalIf(!is, "'", path, "' is truncated at batch ", b, " of ",
                num_batches);
        batches.push_back(std::move(batch));
    }
    fatalIf(!is, "I/O error while reading '", path, "'");
    return TraceDataset(config, std::move(batches));
}

} // namespace sp::data
