#include "sim/event_queue.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace sp::sim
{

void
EventQueue::schedule(double when, Callback fn)
{
    // A NaN timestamp passes any `when < now_` style guard (every
    // comparison with NaN is false) and then poisons the heap's strict
    // weak ordering, so non-finite times are rejected explicitly
    // before the ordering check.
    panicIf(!std::isfinite(when), "non-finite event time: ", when);
    panicIf(when < now_, "scheduling into the past: ", when, " < ", now_);
    heap_.push(Event{when, next_sequence_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(double delay, Callback fn)
{
    // Same NaN trap as schedule(): `delay < 0.0` is false for NaN.
    panicIf(!std::isfinite(delay), "non-finite delay: ", delay);
    panicIf(delay < 0.0, "negative delay ", delay);
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // Move out before pop: the callback may schedule new events, and a
    // copy would deep-copy the std::function (one heap allocation per
    // event). top() is const-qualified, but the element is popped on
    // the next line before the heap can observe its moved-from state.
    Event event = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = event.when;
    ++executed_;
    event.fn();
    return true;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(double deadline)
{
    while (!heap_.empty() && heap_.top().when <= deadline)
        runNext();
    if (now_ < deadline)
        now_ = deadline;
}

} // namespace sp::sim
