#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace sp::sim
{

void
EventQueue::schedule(double when, Callback fn)
{
    panicIf(when < now_, "scheduling into the past: ", when, " < ", now_);
    heap_.push(Event{when, next_sequence_++, std::move(fn)});
}

void
EventQueue::scheduleAfter(double delay, Callback fn)
{
    panicIf(delay < 0.0, "negative delay ", delay);
    schedule(now_ + delay, std::move(fn));
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // Copy out before pop: the callback may schedule new events.
    Event event = heap_.top();
    heap_.pop();
    now_ = event.when;
    ++executed_;
    event.fn();
    return true;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

void
EventQueue::runUntil(double deadline)
{
    while (!heap_.empty() && heap_.top().when <= deadline)
        runNext();
    if (now_ < deadline)
        now_ = deadline;
}

} // namespace sp::sim
