/**
 * @file
 * Traffic -> time conversion and the resource-demand vector.
 *
 * Every stage of every system model reduces to "move these bytes over
 * that link / run these FLOPs on that engine". A ResourceDemand is the
 * per-resource seconds a stage consumes; LatencyModel builds demands
 * from emb::Traffic byte counts and FLOP counts using the
 * HardwareConfig's effective rates.
 *
 * Stage latency combines demands by device: times on the same device
 * serialize (a GPU cannot stream HBM for the embedding kernels while
 * those kernels haven't been issued), while distinct devices overlap.
 */

#ifndef SP_SIM_LATENCY_MODEL_H
#define SP_SIM_LATENCY_MODEL_H

#include <array>
#include <cstddef>
#include <string>

#include "emb/traffic.h"
#include "sim/hardware_config.h"

namespace sp::sim
{

/** The contended hardware resources of the modeled server. */
enum class Resource : size_t
{
    CpuDram,    //!< CPU-side memory bandwidth (incl. CPU work)
    GpuHbm,     //!< GPU memory bandwidth
    GpuCompute, //!< GPU SM throughput
    PcieH2D,    //!< host-to-device link
    PcieD2H,    //!< device-to-host link
    NvLink,     //!< inter-GPU fabric (multi-GPU model only)
    NumResources,
};

inline constexpr size_t kNumResources =
    static_cast<size_t>(Resource::NumResources);

/** Short resource name for reports. */
const char *resourceName(Resource r);

/** Seconds of demand a piece of work places on each resource. */
struct ResourceDemand
{
    std::array<double, kNumResources> seconds{};

    double &operator[](Resource r)
    {
        return seconds[static_cast<size_t>(r)];
    }
    double operator[](Resource r) const
    {
        return seconds[static_cast<size_t>(r)];
    }

    ResourceDemand &operator+=(const ResourceDemand &other);
    friend ResourceDemand operator+(ResourceDemand a,
                                    const ResourceDemand &b)
    {
        a += b;
        return a;
    }

    /**
     * Latency of executing this demand as one stage: same-device
     * components serialize, independent devices overlap.
     * Device groups: {CpuDram}, {GpuHbm, GpuCompute}, {PcieH2D},
     * {PcieD2H}, {NvLink}.
     */
    double stageLatency() const;

    /** Sum of all components (used for energy attribution). */
    double totalBusy() const;
};

/** Converts byte/FLOP counts to per-resource seconds. */
class LatencyModel
{
  public:
    /** Which sparse-access efficiency applies to CPU-side traffic. */
    enum class CpuPath
    {
        Framework, //!< baseline framework gather/scatter ops
        Runtime,   //!< ScratchPipe batched collect/insert copies
    };

    explicit LatencyModel(const HardwareConfig &config);

    const HardwareConfig &config() const { return config_; }

    /** Seconds of CPU DRAM time for the given traffic. */
    double cpuTime(const emb::Traffic &traffic, CpuPath path) const;

    /** Seconds of GPU HBM time for the given traffic. */
    double gpuMemTime(const emb::Traffic &traffic) const;

    /** Seconds of GPU compute for the given FLOPs. */
    double gpuComputeTime(double flops) const;

    /** Seconds to move `bytes` over one PCIe direction. */
    double pcieTime(double bytes) const;

    /** Seconds to move `bytes` over NVLink (per GPU port). */
    double nvlinkTime(double bytes) const;

    // Demand builders ------------------------------------------------
    ResourceDemand cpuDemand(const emb::Traffic &traffic,
                             CpuPath path) const;
    ResourceDemand gpuMemDemand(const emb::Traffic &traffic) const;
    ResourceDemand gpuComputeDemand(double flops) const;
    ResourceDemand pcieH2DDemand(double bytes) const;
    ResourceDemand pcieD2HDemand(double bytes) const;
    ResourceDemand nvlinkDemand(double bytes) const;

  private:
    HardwareConfig config_;
};

} // namespace sp::sim

#endif // SP_SIM_LATENCY_MODEL_H
