#include "sim/latency_model.h"

#include <algorithm>

#include "common/logging.h"

namespace sp::sim
{

const char *
resourceName(Resource r)
{
    switch (r) {
      case Resource::CpuDram:
        return "cpu_dram";
      case Resource::GpuHbm:
        return "gpu_hbm";
      case Resource::GpuCompute:
        return "gpu_compute";
      case Resource::PcieH2D:
        return "pcie_h2d";
      case Resource::PcieD2H:
        return "pcie_d2h";
      case Resource::NvLink:
        return "nvlink";
      default:
        panic("unknown Resource");
    }
}

ResourceDemand &
ResourceDemand::operator+=(const ResourceDemand &other)
{
    for (size_t i = 0; i < kNumResources; ++i)
        seconds[i] += other.seconds[i];
    return *this;
}

double
ResourceDemand::stageLatency() const
{
    const double cpu = (*this)[Resource::CpuDram];
    const double gpu =
        (*this)[Resource::GpuHbm] + (*this)[Resource::GpuCompute];
    const double h2d = (*this)[Resource::PcieH2D];
    const double d2h = (*this)[Resource::PcieD2H];
    const double nvl = (*this)[Resource::NvLink];
    return std::max({cpu, gpu, h2d, d2h, nvl});
}

double
ResourceDemand::totalBusy() const
{
    double total = 0.0;
    for (double s : seconds)
        total += s;
    return total;
}

LatencyModel::LatencyModel(const HardwareConfig &config) : config_(config)
{
    config_.validate();
}

double
LatencyModel::cpuTime(const emb::Traffic &traffic, CpuPath path) const
{
    const double sparse_bw = path == CpuPath::Framework
                                 ? config_.cpuSparseBwFramework()
                                 : config_.cpuSparseBwRuntime();
    return traffic.sparseBytes() / sparse_bw +
           traffic.denseBytes() / config_.cpuDenseBw();
}

double
LatencyModel::gpuMemTime(const emb::Traffic &traffic) const
{
    return traffic.sparseBytes() / config_.gpuSparseBw() +
           traffic.denseBytes() / config_.gpuDenseBw();
}

double
LatencyModel::gpuComputeTime(double flops) const
{
    return flops / config_.gpuGemmFlops();
}

double
LatencyModel::pcieTime(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    return config_.pcie_latency + bytes / config_.pcieEffectiveBw();
}

double
LatencyModel::nvlinkTime(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    return config_.collective_latency +
           bytes / config_.nvlinkEffectiveBw();
}

ResourceDemand
LatencyModel::cpuDemand(const emb::Traffic &traffic, CpuPath path) const
{
    ResourceDemand d;
    d[Resource::CpuDram] = cpuTime(traffic, path);
    return d;
}

ResourceDemand
LatencyModel::gpuMemDemand(const emb::Traffic &traffic) const
{
    ResourceDemand d;
    d[Resource::GpuHbm] = gpuMemTime(traffic);
    return d;
}

ResourceDemand
LatencyModel::gpuComputeDemand(double flops) const
{
    ResourceDemand d;
    d[Resource::GpuCompute] = gpuComputeTime(flops);
    return d;
}

ResourceDemand
LatencyModel::pcieH2DDemand(double bytes) const
{
    ResourceDemand d;
    d[Resource::PcieH2D] = pcieTime(bytes);
    return d;
}

ResourceDemand
LatencyModel::pcieD2HDemand(double bytes) const
{
    ResourceDemand d;
    d[Resource::PcieD2H] = pcieTime(bytes);
    return d;
}

ResourceDemand
LatencyModel::nvlinkDemand(double bytes) const
{
    ResourceDemand d;
    d[Resource::NvLink] = nvlinkTime(bytes);
    return d;
}

} // namespace sp::sim
