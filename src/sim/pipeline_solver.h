/**
 * @file
 * Steady-state solver for the pipelined execution model.
 *
 * ScratchPipe runs six stages concurrently, each on a different
 * in-flight mini-batch (paper Fig. 10). In steady state a new
 * iteration retires every pipeline "cycle". The cycle time is bounded
 * below by two constraint families:
 *
 *  1. stage bound:    no stage may take longer than one cycle;
 *  2. resource bound: concurrently executing stages time-share each
 *     hardware resource, so the summed per-cycle demand on any
 *     resource must fit within one cycle.
 *
 * The solver takes per-stage ResourceDemand vectors (typically
 * averaged over measured iterations) and reports the cycle time, the
 * binding constraint, and total time for N iterations including
 * pipeline fill.
 */

#ifndef SP_SIM_PIPELINE_SOLVER_H
#define SP_SIM_PIPELINE_SOLVER_H

#include <string>
#include <vector>

#include "sim/latency_model.h"

namespace sp::sim
{

/** One named pipeline stage and its per-iteration demand. */
struct StageDemand
{
    std::string name;
    ResourceDemand demand;
    /** Fixed per-stage overhead added to the stage's latency (s). */
    double overhead = 0.0;

    double latency() const { return demand.stageLatency() + overhead; }
};

/** Output of the steady-state analysis. */
struct PipelineSolution
{
    /** Steady-state seconds per retired iteration. */
    double cycle_time = 0.0;
    /** Name of the binding stage, or "resource:<name>" when a
     *  resource bound dominates. */
    std::string bottleneck;
    /** Per-stage latencies in stage order (for Fig. 12(b)). */
    std::vector<double> stage_latencies;
    /** Per-resource summed demand per cycle. */
    ResourceDemand resource_totals;
};

/** Solve the steady state for the given stage demands. */
PipelineSolution solvePipeline(const std::vector<StageDemand> &stages);

/**
 * Total time for `iterations` retirements: pipeline fill (the first
 * batch traverses every stage) plus (iterations - 1) cycles.
 */
double pipelineTotalTime(const PipelineSolution &solution,
                         const std::vector<StageDemand> &stages,
                         uint64_t iterations);

/**
 * Sequential (non-pipelined) execution of the same stages: one
 * iteration costs the sum of all stage latencies. This is the
 * straw-man's timing.
 */
double sequentialIterationTime(const std::vector<StageDemand> &stages);

} // namespace sp::sim

#endif // SP_SIM_PIPELINE_SOLVER_H
