/**
 * @file
 * Minimal discrete-event simulation core.
 *
 * The analytic solver in pipeline_solver.h answers steady-state
 * questions; the event queue supports the few places that need
 * explicit ordering in virtual time (the per-cycle pipeline walk of
 * the functional engine and the link-contention tests). Events at the
 * same timestamp fire in scheduling order (FIFO), which keeps the
 * functional pipeline deterministic.
 */

#ifndef SP_SIM_EVENT_QUEUE_H
#define SP_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace sp::sim
{

/** Time-ordered callback executor with a virtual clock. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current virtual time (seconds). */
    double now() const { return now_; }

    /** Number of events not yet executed. */
    size_t pending() const { return heap_.size(); }

    /** Schedule `fn` at absolute virtual time `when` (>= now). */
    void schedule(double when, Callback fn);

    /** Schedule `fn` `delay` seconds from now. */
    void scheduleAfter(double delay, Callback fn);

    /** Execute the next event; returns false when the queue is empty. */
    bool runNext();

    /** Run until no events remain. */
    void runAll();

    /** Run events with time <= deadline; clock ends at deadline. */
    void runUntil(double deadline);

    /** Total number of events executed so far. */
    uint64_t executedCount() const { return executed_; }

  private:
    struct Event
    {
        double when;
        uint64_t sequence;
        Callback fn;
    };
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    double now_ = 0.0;
    uint64_t next_sequence_ = 0;
    uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace sp::sim

#endif // SP_SIM_EVENT_QUEUE_H
