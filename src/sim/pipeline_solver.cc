#include "sim/pipeline_solver.h"

#include <algorithm>

#include "common/logging.h"

namespace sp::sim
{

PipelineSolution
solvePipeline(const std::vector<StageDemand> &stages)
{
    fatalIf(stages.empty(), "pipeline needs at least one stage");

    PipelineSolution solution;
    solution.stage_latencies.reserve(stages.size());

    // Stage bound.
    double cycle = 0.0;
    for (const auto &stage : stages) {
        const double latency = stage.latency();
        solution.stage_latencies.push_back(latency);
        if (latency > cycle) {
            cycle = latency;
            solution.bottleneck = stage.name;
        }
        solution.resource_totals += stage.demand;
    }

    // Resource bound: concurrent stages time-share each resource.
    for (size_t r = 0; r < kNumResources; ++r) {
        const double demand = solution.resource_totals.seconds[r];
        if (demand > cycle) {
            cycle = demand;
            solution.bottleneck =
                std::string("resource:") +
                resourceName(static_cast<Resource>(r));
        }
    }

    solution.cycle_time = cycle;
    return solution;
}

double
pipelineTotalTime(const PipelineSolution &solution,
                  const std::vector<StageDemand> &stages,
                  uint64_t iterations)
{
    if (iterations == 0)
        return 0.0;
    // Fill: the first batch walks every stage once; afterwards one
    // iteration retires per cycle.
    double fill = 0.0;
    for (const auto &stage : stages)
        fill += stage.latency();
    return fill +
           static_cast<double>(iterations - 1) * solution.cycle_time;
}

double
sequentialIterationTime(const std::vector<StageDemand> &stages)
{
    double total = 0.0;
    for (const auto &stage : stages)
        total += stage.latency();
    return total;
}

} // namespace sp::sim
