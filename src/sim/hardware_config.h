/**
 * @file
 * Hardware description of the modeled training server.
 *
 * Defaults follow the paper's testbed (Section V): Intel Xeon
 * E5-2698v4 with 256 GB DDR4 at 76.8 GB/s, NVIDIA V100 with 32 GB HBM2
 * at 900 GB/s and 15.7 TFLOPS FP32, connected by PCIe gen3 x16 at
 * 16 GB/s per direction. The multi-GPU comparison models an AWS
 * p3.16xlarge (8x V100 with NVLink).
 *
 * Efficiency factors derate peak numbers to what the measured software
 * stack achieves: random row-granule gathers reach a small fraction of
 * peak DRAM bandwidth, and framework-driven GEMMs reach a fraction of
 * peak FLOPS. They are calibrated once against the paper's reported
 * per-iteration latencies (Fig. 5, Fig. 12, Table I) and then held
 * fixed for every experiment; EXPERIMENTS.md records the outcome.
 */

#ifndef SP_SIM_HARDWARE_CONFIG_H
#define SP_SIM_HARDWARE_CONFIG_H

namespace sp::sim
{

/** Bandwidths, compute rates, efficiencies and power of the testbed. */
struct HardwareConfig
{
    // ----- CPU memory subsystem ------------------------------------
    /** Peak CPU DRAM bandwidth (bytes/s). */
    double cpu_dram_bw = 76.8e9;
    /**
     * Effective fraction of peak for framework-issued sparse
     * gather/scatter ops (the PyTorch embedding path of the
     * baselines): small random row granules, little overlap.
     */
    double cpu_sparse_eff_framework = 0.055;
    /**
     * Effective fraction of peak for the ScratchPipe runtime's
     * batched collect/insert copies (sorted, prefetch-friendly).
     */
    double cpu_sparse_eff_runtime = 0.110;
    /** Effective fraction of peak for streaming (dense) CPU passes. */
    double cpu_dense_eff = 0.35;

    // ----- GPU memory subsystem ------------------------------------
    /** Peak GPU HBM bandwidth (bytes/s). */
    double gpu_hbm_bw = 900e9;
    /** Effective fraction for sparse row-granule HBM access. */
    double gpu_sparse_eff = 0.45;
    /** Effective fraction for streaming HBM access. */
    double gpu_dense_eff = 0.75;

    // ----- GPU compute ---------------------------------------------
    /** Peak FP32 throughput (FLOP/s). */
    double gpu_fp32_flops = 15.7e12;
    /** Effective fraction for framework MLP training GEMMs. */
    double gpu_gemm_eff = 0.084;

    // ----- CPU <-> GPU interconnect --------------------------------
    /** PCIe gen3 x16 bandwidth per direction (bytes/s). */
    double pcie_bw = 16e9;
    /** Effective fraction of peak PCIe bandwidth. */
    double pcie_eff = 0.80;
    /** Fixed latency per bulk transfer launch (s). */
    double pcie_latency = 20e-6;

    // ----- Software-stack fixed overheads --------------------------
    /** Per-iteration GPU framework overhead: kernel launches, Python
     *  dispatch, stream synchronisation (s). */
    double gpu_iteration_overhead = 4.0e-3;
    /** Per-stage CPU-side framework overhead (s). */
    double cpu_stage_overhead = 1.0e-3;
    /** Per-pipeline-stage synchronisation overhead (s). */
    double pipeline_stage_overhead = 0.5e-3;
    /** Per-batch GPU overhead of a compiled inference engine: kernel
     *  launches on a pre-built graph, no Python dispatch or optimizer
     *  sync -- orders of magnitude below gpu_iteration_overhead (s). */
    double gpu_serve_overhead = 40e-6;
    /** Per-batch CPU overhead of the serving parameter-server path:
     *  request decode + response encode on a compiled server (s). */
    double cpu_serve_overhead = 20e-6;

    // ----- Multi-GPU system (Table I comparison) -------------------
    /** GPUs in the model-parallel system. */
    int multi_gpu_count = 8;
    /** NVLink bandwidth per GPU (bytes/s), p3.16xlarge class. */
    double nvlink_bw = 150e9;
    /** Effective fraction of peak NVLink bandwidth. */
    double nvlink_eff = 0.70;
    /** Fixed latency per collective launch (s). */
    double collective_latency = 0.8e-3;
    /** Per-iteration overhead of the distributed stack: NCCL
     *  coordination, host input pipeline, multi-process sync (s). */
    double multi_gpu_iteration_overhead = 12.0e-3;
    /**
     * Hot-row update serialization: duplicated gradients targeting the
     * same row contend on atomics during multi-GPU scatter. Charged as
     * penalty * (1 - unique/total lookups), reproducing Table I's mild
     * slowdown at high locality (s).
     */
    double multi_gpu_hot_row_penalty = 3.0e-3;

    // ----- Power (energy model, Fig. 14) ---------------------------
    double cpu_active_watts = 135.0;
    double cpu_idle_watts = 55.0;
    double gpu_active_watts = 300.0;
    double gpu_idle_watts = 50.0;

    /** The paper's measured testbed (identical to the defaults). */
    static HardwareConfig paperTestbed();

    /** Validate all parameters; fatal() on nonsense values. */
    void validate() const;

    // Derived effective rates (bytes/s or FLOP/s).
    double cpuSparseBwFramework() const
    {
        return cpu_dram_bw * cpu_sparse_eff_framework;
    }
    double cpuSparseBwRuntime() const
    {
        return cpu_dram_bw * cpu_sparse_eff_runtime;
    }
    double cpuDenseBw() const { return cpu_dram_bw * cpu_dense_eff; }
    double gpuSparseBw() const { return gpu_hbm_bw * gpu_sparse_eff; }
    double gpuDenseBw() const { return gpu_hbm_bw * gpu_dense_eff; }
    double gpuGemmFlops() const { return gpu_fp32_flops * gpu_gemm_eff; }
    double pcieEffectiveBw() const { return pcie_bw * pcie_eff; }
    double nvlinkEffectiveBw() const { return nvlink_bw * nvlink_eff; }
};

} // namespace sp::sim

#endif // SP_SIM_HARDWARE_CONFIG_H
