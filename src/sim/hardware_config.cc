#include "sim/hardware_config.h"

#include "common/logging.h"

namespace sp::sim
{

HardwareConfig
HardwareConfig::paperTestbed()
{
    return HardwareConfig{};
}

void
HardwareConfig::validate() const
{
    fatalIf(cpu_dram_bw <= 0 || gpu_hbm_bw <= 0 || pcie_bw <= 0,
            "bandwidths must be positive");
    fatalIf(gpu_fp32_flops <= 0, "GPU FLOPS must be positive");
    fatalIf(multi_gpu_count < 1, "multi_gpu_count must be >= 1");

    auto check_eff = [](double v, const char *name) {
        fatalIf(v <= 0.0 || v > 1.0, name,
                " must be an efficiency in (0, 1], got ", v);
    };
    check_eff(cpu_sparse_eff_framework, "cpu_sparse_eff_framework");
    check_eff(cpu_sparse_eff_runtime, "cpu_sparse_eff_runtime");
    check_eff(cpu_dense_eff, "cpu_dense_eff");
    check_eff(gpu_sparse_eff, "gpu_sparse_eff");
    check_eff(gpu_dense_eff, "gpu_dense_eff");
    check_eff(gpu_gemm_eff, "gpu_gemm_eff");
    check_eff(pcie_eff, "pcie_eff");
    check_eff(nvlink_eff, "nvlink_eff");

    fatalIf(gpu_iteration_overhead < 0 || cpu_stage_overhead < 0 ||
                pipeline_stage_overhead < 0 ||
                multi_gpu_iteration_overhead < 0 || pcie_latency < 0 ||
                collective_latency < 0 || multi_gpu_hot_row_penalty < 0,
            "overheads must be non-negative");
    fatalIf(cpu_active_watts < cpu_idle_watts ||
                gpu_active_watts < gpu_idle_watts,
            "active power must be >= idle power");
}

} // namespace sp::sim
