/**
 * @file
 * ScratchPipe extended to multi-GPU training (paper Section VI-G).
 *
 * The paper discusses, without evaluating, how ScratchPipe extends to
 * table-wise model-parallel multi-GPU training: each GPU owns a subset
 * of the embedding tables and runs one ScratchPipe cache-manager
 * instance per owned table; because table-wise parallelism already
 * keeps per-table forward/backward local to one GPU, no new inter-GPU
 * hazards appear. The paper predicts the extension is *viable but not
 * cost-effective* -- the DNNs were never the bottleneck, so the extra
 * GPUs mostly idle. This model makes that argument quantitative.
 *
 * Timing composition per pipeline cycle:
 *  - CPU DRAM serves every GPU's [Collect]/[Insert] traffic (shared);
 *  - each GPU has its own HBM, PCIe lanes and SMs (per-GPU demand is
 *    the per-table demand of its owned tables);
 *  - [Train] adds the all-to-all of reduced embeddings and the
 *    data-parallel MLP all-reduce over NVLink;
 *  - the distributed framework overhead of the plain multi-GPU system
 *    applies.
 */

#ifndef SP_SYS_SCRATCHPIPE_MULTIGPU_H
#define SP_SYS_SCRATCHPIPE_MULTIGPU_H

#include "data/dataset.h"
#include "sim/latency_model.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/scratchpipe_sys.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Timing model of table-parallel ScratchPipe over N GPUs. */
class ScratchPipeMultiGpuSystem
{
  public:
    ScratchPipeMultiGpuSystem(const ModelConfig &model,
                              const sim::HardwareConfig &hardware,
                              const ScratchPipeOptions &options);

    RunResult simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup = 0) const;

    uint32_t slotsPerTable() const { return slots_per_table_; }

  private:
    ModelConfig model_;
    sim::LatencyModel latency_;
    ScratchPipeOptions options_;
    uint32_t slots_per_table_ = 0;
};

} // namespace sp::sys

#endif // SP_SYS_SCRATCHPIPE_MULTIGPU_H
