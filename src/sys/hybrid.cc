#include "sys/hybrid.h"

#include <memory>

#include "common/logging.h"
#include "emb/traffic.h"
#include "nn/flops.h"
#include "sys/registry.h"

namespace sp::sys
{

HybridCpuGpu::HybridCpuGpu(const ModelConfig &model,
                           const sim::HardwareConfig &hardware)
    : model_(model), latency_(hardware)
{
    model_.validate();
}

RunResult
HybridCpuGpu::simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup) const
{
    fatalIf(iterations == 0, "need at least one iteration");
    fatalIf(warmup + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");
    fatalIf(warmup + iterations > stats.iterations(), "stats cover only ",
            stats.iterations(), " batches");

    const auto &hw = latency_.config();
    const auto &trace = model_.trace;
    const uint64_t n_per_table = trace.idsPerTable();
    const uint64_t batch = trace.batch_size;
    const size_t rb = model_.rowBytes();
    using CpuPath = sim::LatencyModel::CpuPath;

    double total_fwd = 0.0, total_bwd = 0.0, total_gpu = 0.0;
    double cpu_busy = 0.0, gpu_busy = 0.0;

    // The baseline is stateless across iterations; warm-up batches are
    // simply skipped (the parameter exists for interface uniformity
    // with the stateful cache systems).
    for (uint64_t i = warmup; i < warmup + iterations; ++i) {
        // CPU embedding forward: gather + reduce per table.
        emb::Traffic fwd;
        for (size_t t = 0; t < trace.num_tables; ++t)
            fwd += emb::embeddingForwardTraffic(n_per_table, batch, rb);
        const double t_fwd = latency_.cpuTime(fwd, CpuPath::Framework) +
                             hw.cpu_stage_overhead;

        // Reduced embeddings + dense inputs to the GPU.
        const double h2d_bytes =
            static_cast<double>(batch) * trace.num_tables * rb +
            static_cast<double>(batch) * (trace.dense_features + 1) *
                sizeof(float);
        const double t_h2d = latency_.pcieTime(h2d_bytes);

        // GPU DNN training.
        const double flops =
            nn::dlrmIterationFlops(model_.dlrmConfig(), batch);
        const double t_mlp = latency_.gpuComputeTime(flops) +
                             hw.gpu_iteration_overhead;

        // Embedding gradients back to the CPU.
        const double d2h_bytes =
            static_cast<double>(batch) * trace.num_tables * rb;
        const double t_d2h = latency_.pcieTime(d2h_bytes);

        // CPU embedding backward: duplicate + coalesce + scatter.
        emb::Traffic bwd;
        for (size_t t = 0; t < trace.num_tables; ++t) {
            bwd += emb::embeddingBackwardTraffic(
                n_per_table, batch, stats.unique(i, t), rb);
        }
        const double t_bwd = latency_.cpuTime(bwd, CpuPath::Framework) +
                             hw.cpu_stage_overhead;

        total_fwd += t_fwd;
        total_bwd += t_bwd;
        total_gpu += t_h2d + t_mlp + t_d2h;
        cpu_busy += t_fwd + t_bwd;
        gpu_busy += t_h2d + t_mlp + t_d2h;
    }

    const double inv = 1.0 / static_cast<double>(iterations);
    RunResult result;
    result.system_name = name();
    result.iterations = iterations;
    result.breakdown.add("CPU embedding forward", total_fwd * inv);
    result.breakdown.add("CPU embedding backward", total_bwd * inv);
    result.breakdown.add("GPU", total_gpu * inv);
    result.seconds_per_iteration = result.breakdown.total();
    result.busy.iteration_seconds = result.seconds_per_iteration;
    result.busy.cpu_busy_seconds = cpu_busy * inv;
    result.busy.gpu_busy_seconds = gpu_busy * inv;
    return result;
}

void
registerHybridSystem(Registry &registry)
{
    registry.addEntry(
        {"hybrid", HybridCpuGpu::kDescription,
         /*uses_cache_fraction=*/false,
         /*uses_scratchpipe_options=*/false,
         /*uses_serve_options=*/false,
         [](const ModelConfig &model, const sim::HardwareConfig &hw,
            const SystemSpec &) -> std::unique_ptr<System> {
             return std::make_unique<HybridCpuGpu>(model, hw);
         }});
}

} // namespace sp::sys
