#include "sys/registry.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace sp::sys
{

// Defined next to each system's implementation; called once from
// instance(). Central dispatch (rather than static initialisers in
// each .cc) keeps registration immune to static-library dead
// stripping: a driver that only links the registry still sees every
// system.
void registerHybridSystem(Registry &registry);
void registerStaticCacheSystem(Registry &registry);
void registerScratchPipeSystems(Registry &registry);
void registerMultiGpuSystem(Registry &registry);
void registerServingSystem(Registry &registry);

Registry &
Registry::instance()
{
    // Magic static: the builtin registrations complete (thread-safely)
    // before any caller can observe the instance.
    static Registry registry = [] {
        Registry built;
        registerHybridSystem(built);
        registerStaticCacheSystem(built);
        registerScratchPipeSystems(built);
        registerMultiGpuSystem(built);
        registerServingSystem(built);
        return built;
    }();
    return registry;
}

void
Registry::add(Entry entry)
{
    instance().addEntry(std::move(entry));
}

void
Registry::addEntry(Entry entry)
{
    panicIf(entry.name.empty(), "registry: entry without a name");
    panicIf(!entry.build, "registry: system '", entry.name,
            "' has no builder");
    panicIf(entries_.count(entry.name) != 0,
            "registry: duplicate system '", entry.name, "'");
    entries_.emplace(entry.name, std::move(entry));
}

std::unique_ptr<System>
Registry::build(const SystemSpec &spec, const ModelConfig &model,
                const sim::HardwareConfig &hw)
{
    spec.validate();
    return entry(spec.name).build(model, hw, spec);
}

std::unique_ptr<System>
Registry::build(const std::string &name, const SystemSpec &spec,
                const ModelConfig &model, const sim::HardwareConfig &hw)
{
    SystemSpec named = spec;
    named.name = name;
    return build(named, model, hw);
}

std::vector<std::string>
Registry::names()
{
    std::vector<std::string> names;
    for (const auto &[name, entry] : instance().entries_)
        names.push_back(name);
    return names;
}

const Registry::Entry &
Registry::entry(const std::string &name)
{
    const auto &entries = instance().entries_;
    const auto found = entries.find(name);
    if (found != entries.end())
        return found->second;

    std::ostringstream known;
    for (const auto &n : names())
        known << (known.tellp() > 0 ? "/" : "") << n;
    const std::string nearest = suggest(name);
    if (!nearest.empty())
        fatal("unknown system '", name, "' -- did you mean '", nearest,
              "'? (", known.str(), ")");
    fatal("unknown system '", name, "' (", known.str(), ")");
}

bool
Registry::contains(const std::string &name)
{
    return instance().entries_.count(name) != 0;
}

namespace
{

/** Levenshtein distance, O(|a|*|b|). */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diagonal = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            const size_t substitute =
                diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            diagonal = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
        }
    }
    return row[b.size()];
}

} // namespace

std::string
Registry::suggest(const std::string &name)
{
    std::string best;
    size_t best_distance = 0;
    for (const auto &candidate : names()) {
        const size_t distance = editDistance(name, candidate);
        if (best.empty() || distance < best_distance) {
            best = candidate;
            best_distance = distance;
        }
    }
    // Only suggest plausible typos, not arbitrary replacements.
    const size_t cutoff = std::max<size_t>(2, name.size() / 3);
    return best_distance <= cutoff ? best : std::string();
}

} // namespace sp::sys
