/**
 * @file
 * CPU-GPU system with a static top-N GPU embedding cache
 * (paper Fig. 4(b), the Yin et al. baseline).
 *
 * The hottest `cache_fraction` of every table's rows live permanently
 * in GPU memory. Each iteration: sparse IDs go H2D and are classified;
 * missed IDs return D2H; the CPU gathers missed rows and ships them up;
 * the GPU reduces hit+missed embeddings and trains the MLPs; hit-ID
 * gradients update the cache on the GPU while missed-ID gradients are
 * duplicated/coalesced/scattered on the *CPU* -- the black stages of
 * Fig. 4(b) whose latency the paper identifies as the residual
 * bottleneck.
 *
 * The synthetic samplers emit rank-ordered IDs (ID 0 hottest), so
 * top-N membership in timing mode is the threshold test id < N --
 * exactly the frequency ranking the real system would profile.
 */

#ifndef SP_SYS_STATIC_SYS_H
#define SP_SYS_STATIC_SYS_H

#include "data/dataset.h"
#include "sim/latency_model.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/system.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Timing model of the static-cache CPU-GPU baseline. */
class StaticCacheSystem : public System
{
  public:
    /**
     * @param cache_fraction Fraction of each table cached (paper
     *        studies 0.02 - 0.10).
     */
    StaticCacheSystem(const ModelConfig &model,
                      const sim::HardwareConfig &hardware,
                      double cache_fraction);

    RunResult simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup = 0) const override;

    static constexpr const char *kDescription =
        "CPU-GPU with a static top-N GPU cache (Fig. 4b, Yin et al. "
        "baseline)";

    std::string name() const override { return "Static cache"; }
    std::string description() const override { return kDescription; }

    /** Cached rows per table. */
    uint64_t cachedRowsPerTable() const { return cached_rows_; }

  private:
    ModelConfig model_;
    sim::LatencyModel latency_;
    double cache_fraction_;
    uint64_t cached_rows_;
};

} // namespace sp::sys

#endif // SP_SYS_STATIC_SYS_H
