/**
 * @file
 * The 8-GPU "GPU-only" comparison system (paper Section VI-F).
 *
 * Embedding tables are partitioned table-wise across the GPUs' HBM
 * (model parallelism); the MLPs train data-parallel. One iteration:
 * per-GPU embedding forward at HBM speed, an all-to-all exchanging the
 * reduced embeddings, data-parallel MLP forward/backward, a gradient
 * all-reduce, the reverse all-to-all, and the per-GPU embedding
 * backward. Hot rows serialize their atomic updates, which is why
 * Table I's multi-GPU times *rise* slightly with locality.
 *
 * This system exists to reproduce Table I's cost comparison; its
 * absolute time is dominated by the distributed framework's fixed
 * overheads (calibrated once against Table I, see DESIGN.md).
 */

#ifndef SP_SYS_MULTIGPU_H
#define SP_SYS_MULTIGPU_H

#include "data/dataset.h"
#include "sim/latency_model.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/system.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Timing model of the 8x V100 model-parallel trainer. */
class MultiGpuSystem : public System
{
  public:
    MultiGpuSystem(const ModelConfig &model,
                   const sim::HardwareConfig &hardware);

    RunResult simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup = 0) const override;

    static constexpr const char *kDescription =
        "8x V100 model-parallel GPU-only trainer (Section VI-F)";

    std::string name() const override { return "8-GPU"; }
    std::string description() const override { return kDescription; }

  private:
    ModelConfig model_;
    sim::LatencyModel latency_;
};

} // namespace sp::sys

#endif // SP_SYS_MULTIGPU_H
