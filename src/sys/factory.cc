#include "sys/factory.h"

#include "common/logging.h"
#include "sys/registry.h"

namespace sp::sys
{

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Hybrid:
        return "Hybrid CPU-GPU";
      case SystemKind::StaticCache:
        return "Static cache";
      case SystemKind::Strawman:
        return "Straw-man";
      case SystemKind::ScratchPipe:
        return "ScratchPipe";
      case SystemKind::MultiGpu:
        return "8-GPU";
    }
    panic("unknown SystemKind");
}

const char *
systemSpecName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Hybrid:
        return "hybrid";
      case SystemKind::StaticCache:
        return "static";
      case SystemKind::Strawman:
        return "strawman";
      case SystemKind::ScratchPipe:
        return "scratchpipe";
      case SystemKind::MultiGpu:
        return "multigpu";
    }
    panic("unknown SystemKind");
}

RunResult
simulateSystem(SystemKind kind, const ModelConfig &model,
               const sim::HardwareConfig &hardware, double cache_fraction,
               const data::TraceDataset &dataset, const BatchStats &stats,
               uint64_t iterations, uint64_t warmup)
{
    SystemSpec spec;
    spec.name = systemSpecName(kind);
    // The legacy calling convention passed cache_fraction positionally
    // and ignored it for the cache-less systems; the shim preserves
    // that (only the SystemSpec path rejects the combination).
    if (Registry::entry(spec.name).uses_cache_fraction)
        spec.cache_fraction = cache_fraction;
    const auto system = Registry::build(spec, model, hardware);
    return system->simulate(dataset, stats, iterations, warmup);
}

} // namespace sp::sys
