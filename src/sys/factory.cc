#include "sys/factory.h"

#include "common/logging.h"
#include "sys/hybrid.h"
#include "sys/multigpu.h"
#include "sys/scratchpipe_sys.h"
#include "sys/static_sys.h"

namespace sp::sys
{

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Hybrid:
        return "Hybrid CPU-GPU";
      case SystemKind::StaticCache:
        return "Static cache";
      case SystemKind::Strawman:
        return "Straw-man";
      case SystemKind::ScratchPipe:
        return "ScratchPipe";
      case SystemKind::MultiGpu:
        return "8-GPU";
    }
    panic("unknown SystemKind");
}

RunResult
simulateSystem(SystemKind kind, const ModelConfig &model,
               const sim::HardwareConfig &hardware, double cache_fraction,
               const data::TraceDataset &dataset, const BatchStats &stats,
               uint64_t iterations, uint64_t warmup)
{
    switch (kind) {
      case SystemKind::Hybrid: {
        HybridCpuGpu system(model, hardware);
        return system.simulate(dataset, stats, iterations, warmup);
      }
      case SystemKind::StaticCache: {
        StaticCacheSystem system(model, hardware, cache_fraction);
        return system.simulate(dataset, stats, iterations, warmup);
      }
      case SystemKind::Strawman: {
        ScratchPipeOptions options;
        options.cache_fraction = cache_fraction;
        options.pipelined = false;
        ScratchPipeSystem system(model, hardware, options);
        return system.simulate(dataset, stats, iterations, warmup);
      }
      case SystemKind::ScratchPipe: {
        ScratchPipeOptions options;
        options.cache_fraction = cache_fraction;
        options.pipelined = true;
        ScratchPipeSystem system(model, hardware, options);
        return system.simulate(dataset, stats, iterations, warmup);
      }
      case SystemKind::MultiGpu: {
        MultiGpuSystem system(model, hardware);
        return system.simulate(dataset, stats, iterations, warmup);
      }
    }
    panic("unknown SystemKind");
}

} // namespace sp::sys
