/**
 * @file
 * Shared per-batch trace statistics.
 *
 * Several system models need the number of *unique* IDs per batch per
 * table (it sizes the coalesced-gradient scatter). Computing it once
 * per dataset and sharing across systems keeps sweeps fast and
 * guarantees every system charges identical traffic for identical
 * work.
 */

#ifndef SP_SYS_BATCH_STATS_H
#define SP_SYS_BATCH_STATS_H

#include <cstdint>
#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace sp::sys
{

/** Unique-ID counts for a prefix of a dataset. */
class BatchStats
{
  public:
    /** Analyse batches [0, iterations) of `dataset`. */
    BatchStats(const data::TraceDataset &dataset, uint64_t iterations);

    /** Unique IDs of batch `b`, table `t`. */
    size_t unique(uint64_t b, size_t t) const;

    /** Sum of unique counts across tables for batch `b`. */
    size_t uniqueTotal(uint64_t b) const;

    uint64_t iterations() const { return unique_.size(); }

  private:
    std::vector<std::vector<size_t>> unique_; // [batch][table]
};

} // namespace sp::sys

#endif // SP_SYS_BATCH_STATS_H
