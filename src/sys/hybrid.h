/**
 * @file
 * Baseline hybrid CPU-GPU system without caching (paper Fig. 4(a)).
 *
 * The CPU stores every embedding table and executes both the
 * memory-bound embedding forward (gather + reduce) and backward
 * (duplicate + coalesce + scatter); the GPU trains the MLPs. The
 * iteration is the sequential sum of: CPU embedding forward, reduced
 * embeddings H2D, GPU MLP forward/backward, gradients D2H, CPU
 * embedding backward -- the structure whose CPU-bound latency Fig. 5
 * breaks down.
 */

#ifndef SP_SYS_HYBRID_H
#define SP_SYS_HYBRID_H

#include "data/dataset.h"
#include "sim/latency_model.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/system.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Timing model of the no-cache hybrid CPU-GPU baseline. */
class HybridCpuGpu : public System
{
  public:
    HybridCpuGpu(const ModelConfig &model,
                 const sim::HardwareConfig &hardware);

    /**
     * Simulate `iterations` batches of `dataset` (timing only).
     * @param stats Shared per-batch unique-ID counts.
     */
    RunResult simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup = 0) const override;

    static constexpr const char *kDescription =
        "CPU-resident embeddings, GPU MLPs, no cache (Fig. 4a)";

    std::string name() const override { return "Hybrid CPU-GPU"; }
    std::string description() const override { return kDescription; }

  private:
    ModelConfig model_;
    sim::LatencyModel latency_;
};

} // namespace sp::sys

#endif // SP_SYS_HYBRID_H
