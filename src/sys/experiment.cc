#include "sys/experiment.h"

#include <exception>
#include <thread>

#include "common/logging.h"
#include "sys/registry.h"

namespace sp::sys
{

namespace
{

/** Extra batches beyond warmup+measure for the future-window
 *  look-ahead (matches the seed drivers' "+2"). */
constexpr uint64_t kLookahead = 2;

} // namespace

ExperimentRunner::ExperimentRunner(const ModelConfig &model,
                                   const sim::HardwareConfig &hardware,
                                   const ExperimentOptions &options)
    : model_(model), hardware_(hardware), options_(options)
{
    fatalIf(options_.iterations == 0,
            "experiment needs at least one measured iteration");
    model_.validate();
    const uint64_t batches =
        options_.warmup + options_.iterations + kLookahead;
    dataset_ =
        std::make_unique<data::TraceDataset>(model_.trace, batches);
    stats_ = std::make_unique<BatchStats>(
        *dataset_, options_.warmup + options_.iterations);
}

RunResult
ExperimentRunner::run(const SystemSpec &spec) const
{
    const auto system = Registry::build(spec, model_, hardware_);
    return system->simulate(*dataset_, *stats_, options_.iterations,
                            options_.warmup);
}

RunResult
ExperimentRunner::run(const std::string &spec_text) const
{
    return run(SystemSpec::parse(spec_text));
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<SystemSpec> &specs) const
{
    // Validate everything up front so a bad spec fails fast on the
    // caller's thread, before any simulation starts.
    for (const auto &spec : specs)
        spec.validate();

    std::vector<RunResult> results(specs.size());
    if (!options_.parallel || specs.size() <= 1) {
        for (size_t i = 0; i < specs.size(); ++i)
            results[i] = run(specs[i]);
        return results;
    }

    std::vector<std::exception_ptr> errors(specs.size());
    std::vector<std::thread> threads;
    threads.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        threads.emplace_back([this, &specs, &results, &errors, i] {
            try {
                results[i] = run(specs[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (const auto &error : errors)
        if (error)
            std::rethrow_exception(error);
    return results;
}

} // namespace sp::sys
