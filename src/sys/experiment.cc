#include "sys/experiment.h"

#include "common/fault.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/trace_store.h"
#include "sys/registry.h"

namespace sp::sys
{

namespace
{

/** Extra batches beyond warmup+measure for the future-window
 *  look-ahead (matches the seed drivers' "+2"). */
constexpr uint64_t kLookahead = 2;

} // namespace

ExperimentRunner::ExperimentRunner(const ModelConfig &model,
                                   const sim::HardwareConfig &hardware,
                                   const ExperimentOptions &options)
    : model_(model), hardware_(hardware), options_(options)
{
    fatalIf(options_.iterations == 0,
            "experiment needs at least one measured iteration");
    model_.validate();
    const uint64_t batches =
        options_.warmup + options_.iterations + kLookahead;
    if (!options_.replay_path.empty()) {
        // Replay: the recorded file is the trace. Its embedded config
        // replaces the model's trace geometry so the systems, batch
        // statistics and capacity bounds all see the recorded stream's
        // true shape; the trace cache never participates.
        dataset_ = std::make_unique<data::TraceDataset>(
            data::TraceDataset::replay(options_.replay_path, batches));
        fatalIf(dataset_->numBatches() < batches, "replay file '",
                options_.replay_path, "' holds only ",
                dataset_->numBatches(), " batches; warmup ",
                options_.warmup, " + iterations ", options_.iterations,
                " + look-ahead ", kLookahead, " needs ", batches);
        model_.trace = dataset_->config();
        model_.validate();
        stats_ = std::make_unique<BatchStats>(
            *dataset_, options_.warmup + options_.iterations);
        return;
    }
    // With the process-wide trace cache on (drivers enable it; see
    // data/trace_store.h), warm starts mmap a published trace instead
    // of regenerating it -- batch contents are identical either way,
    // so every downstream result is bit-identical.
    if (data::TraceStore::cacheEnabled()) {
        dataset_ = std::make_unique<data::TraceDataset>(
            data::TraceStore().acquire(model_.trace, batches));
    } else {
        dataset_ = std::make_unique<data::TraceDataset>(model_.trace,
                                                        batches);
    }
    stats_ = std::make_unique<BatchStats>(
        *dataset_, options_.warmup + options_.iterations);
}

RunResult
ExperimentRunner::run(const SystemSpec &spec) const
{
    SP_FAULT_POINT("experiment.run");
    const auto system = Registry::build(spec, model_, hardware_);
    return system->simulate(*dataset_, *stats_, options_.iterations,
                            options_.warmup);
}

RunResult
ExperimentRunner::run(const std::string &spec_text) const
{
    return run(SystemSpec::parse(spec_text));
}

size_t
ExperimentRunner::effectiveJobs() const
{
    return options_.jobs > 0 ? options_.jobs
                             : common::ThreadPool::defaultThreads();
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<SystemSpec> &specs) const
{
    // Validate everything up front so a bad spec fails fast on the
    // caller's thread, before any simulation starts.
    for (const auto &spec : specs)
        spec.validate();

    std::vector<RunResult> results(specs.size());
    // Failure isolation: one spec's error lands in its result slot
    // instead of aborting the sweep (unless fail_fast). Panics pass
    // through -- an invariant violation means nothing downstream is
    // trustworthy. The slot-i-from-call-i write pattern keeps failed
    // sweeps exactly as deterministic as clean ones.
    const auto runOne = [this, &specs, &results](size_t i) {
        if (options_.fail_fast) {
            results[i] = run(specs[i]);
            return;
        }
        try {
            results[i] = run(specs[i]);
        } catch (const PanicError &) {
            throw;
        } catch (const std::exception &e) {
            results[i] = RunResult();
            results[i].system_name = specs[i].summary();
            results[i].error = e.what();
        }
    };

    const size_t jobs = effectiveJobs();
    if (specs.size() <= 1 || jobs <= 1) {
        for (size_t i = 0; i < specs.size(); ++i)
            runOne(i);
        return results;
    }

    // Fan the specs out over the shared global pool, capped at `jobs`
    // concurrent systems (caller + jobs-1 helpers). This replaces the
    // old unbounded thread-per-spec spawn -- a 40-spec sweep no
    // longer oversubscribes the host 40 ways -- without stacking a
    // second pool on top of the one the inner sites (trace
    // generation, per-table planning) already use. parallelFor
    // rethrows the first error (with fail_fast that is the first
    // failing spec; otherwise only panics and injected
    // "thread_pool.task" faults reach it).
    common::ThreadPool::global().parallelFor(specs.size(), runOne,
                                             jobs - 1);
    return results;
}

} // namespace sp::sys
