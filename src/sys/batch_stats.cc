#include "sys/batch_stats.h"

#include "common/logging.h"
#include "emb/embedding_ops.h"

namespace sp::sys
{

BatchStats::BatchStats(const data::TraceDataset &dataset,
                       uint64_t iterations)
{
    fatalIf(iterations > dataset.numBatches(),
            "dataset has ", dataset.numBatches(), " batches, need ",
            iterations);
    unique_.resize(iterations);
    for (uint64_t b = 0; b < iterations; ++b) {
        const auto &batch = dataset.batch(b);
        unique_[b].reserve(batch.numTables());
        for (size_t t = 0; t < batch.numTables(); ++t)
            unique_[b].push_back(emb::countUnique(batch.table_ids[t]));
    }
}

size_t
BatchStats::unique(uint64_t b, size_t t) const
{
    panicIf(b >= unique_.size(), "batch index out of range");
    panicIf(t >= unique_[b].size(), "table index out of range");
    return unique_[b][t];
}

size_t
BatchStats::uniqueTotal(uint64_t b) const
{
    panicIf(b >= unique_.size(), "batch index out of range");
    size_t total = 0;
    for (size_t u : unique_[b])
        total += u;
    return total;
}

} // namespace sp::sys
