#include "sys/batch_stats.h"

#include "common/logging.h"
#include "common/thread_pool.h"
#include "emb/embedding_ops.h"

namespace sp::sys
{

BatchStats::BatchStats(const data::TraceDataset &dataset,
                       uint64_t iterations)
{
    fatalIf(iterations > dataset.numBatches(),
            "dataset has ", dataset.numBatches(), " batches, need ",
            iterations);
    // Batches are independent, so the unique counts compute in
    // parallel; each worker reuses one sort buffer across its share
    // of the batches instead of allocating per countUnique call.
    unique_.resize(iterations);
    common::parallelFor(iterations, [this, &dataset](size_t b) {
        static thread_local std::vector<uint64_t> scratch;
        const auto &batch = dataset.batch(b);
        unique_[b].reserve(batch.numTables());
        for (size_t t = 0; t < batch.numTables(); ++t)
            unique_[b].push_back(
                emb::countUnique(batch.ids(t), scratch));
    });
}

size_t
BatchStats::unique(uint64_t b, size_t t) const
{
    panicIf(b >= unique_.size(), "batch index out of range");
    panicIf(t >= unique_[b].size(), "table index out of range");
    return unique_[b][t];
}

size_t
BatchStats::uniqueTotal(uint64_t b) const
{
    panicIf(b >= unique_.size(), "batch index out of range");
    size_t total = 0;
    for (size_t u : unique_[b])
        total += u;
    return total;
}

} // namespace sp::sys
