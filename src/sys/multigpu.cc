#include "sys/multigpu.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "emb/traffic.h"
#include "nn/dlrm.h"
#include "nn/flops.h"
#include "sys/registry.h"

namespace sp::sys
{

MultiGpuSystem::MultiGpuSystem(const ModelConfig &model,
                               const sim::HardwareConfig &hardware)
    : model_(model), latency_(hardware)
{
    model_.validate();
}

RunResult
MultiGpuSystem::simulate(const data::TraceDataset &dataset,
                         const BatchStats &stats, uint64_t iterations,
                         uint64_t warmup) const
{
    fatalIf(iterations == 0, "need at least one iteration");
    fatalIf(warmup + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");

    const auto &hw = latency_.config();
    const auto &trace = model_.trace;
    const uint64_t batch = trace.batch_size;
    const size_t rb = model_.rowBytes();
    const uint64_t n_per_table = trace.idsPerTable();
    const int gpus = hw.multi_gpu_count;
    const size_t tables_per_gpu =
        (trace.num_tables + gpus - 1) / static_cast<size_t>(gpus);

    // MLP parameter bytes for the ring all-reduce.
    const nn::DlrmConfig dlrm = model_.dlrmConfig();
    const nn::DlrmModel probe(dlrm, /*seed=*/1);
    const double param_bytes =
        static_cast<double>(probe.parameterCount()) * sizeof(float);

    double total_emb = 0.0, total_comm = 0.0, total_mlp = 0.0;
    double gpu_busy = 0.0;

    // GPU-only training is stateless iteration to iteration; skip the
    // warm-up prefix.
    for (uint64_t i = warmup; i < warmup + iterations; ++i) {
        // Per-GPU embedding forward + backward for its own tables; the
        // slowest GPU (most tables) binds, so charge tables_per_gpu.
        emb::Traffic emb_local;
        double dup_ratio = 0.0;
        for (size_t t = 0; t < tables_per_gpu && t < trace.num_tables;
             ++t) {
            const size_t u = stats.unique(i, t);
            emb_local += emb::embeddingForwardTraffic(n_per_table, batch,
                                                      rb);
            emb_local += emb::embeddingBackwardTraffic(n_per_table, batch,
                                                       u, rb);
            dup_ratio += 1.0 - static_cast<double>(u) /
                                   static_cast<double>(n_per_table);
        }
        dup_ratio /= static_cast<double>(tables_per_gpu);
        const double t_emb = latency_.gpuMemTime(emb_local) +
                             hw.multi_gpu_hot_row_penalty * dup_ratio;

        // All-to-all of reduced embeddings, forward and backward.
        const double a2a_bytes = static_cast<double>(batch) *
                                 tables_per_gpu * rb *
                                 (gpus - 1.0) / gpus;
        const double t_a2a = 2.0 * latency_.nvlinkTime(a2a_bytes);

        // Data-parallel MLPs: 1/gpus of the batch each, plus a ring
        // all-reduce of the weight gradients.
        const double flops =
            nn::dlrmIterationFlops(dlrm, batch) / gpus;
        const double t_mlp = latency_.gpuComputeTime(flops);
        const double allreduce_bytes =
            2.0 * param_bytes * (gpus - 1.0) / gpus;
        const double t_allreduce = latency_.nvlinkTime(allreduce_bytes);

        // Host input pipeline: each GPU pulls its shard of IDs and
        // dense features over PCIe.
        const double input_bytes =
            (static_cast<double>(trace.idsPerBatch()) * sizeof(uint64_t) +
             static_cast<double>(batch) * (trace.dense_features + 1) *
                 sizeof(float)) /
            gpus;
        const double t_input = latency_.pcieTime(input_bytes);

        total_emb += t_emb;
        total_comm += t_a2a + t_allreduce + t_input;
        total_mlp += t_mlp;
        gpu_busy += t_emb + t_a2a + t_allreduce + t_mlp + t_input;
    }

    const double inv = 1.0 / static_cast<double>(iterations);
    RunResult result;
    result.system_name = name();
    result.iterations = iterations;
    result.breakdown.add("GPU embedding", total_emb * inv);
    result.breakdown.add("Communication", total_comm * inv);
    result.breakdown.add("GPU MLP", total_mlp * inv);
    result.breakdown.add("Framework", hw.multi_gpu_iteration_overhead);
    result.seconds_per_iteration = result.breakdown.total();
    result.busy.iteration_seconds = result.seconds_per_iteration;
    result.busy.cpu_busy_seconds = 0.1 * result.seconds_per_iteration;
    result.busy.gpu_busy_seconds =
        std::min(gpu_busy * inv + hw.multi_gpu_iteration_overhead,
                 result.seconds_per_iteration);
    result.gpu_bytes = static_cast<double>(model_.embeddingModelBytes());
    return result;
}

void
registerMultiGpuSystem(Registry &registry)
{
    registry.addEntry(
        {"multigpu", MultiGpuSystem::kDescription,
         /*uses_cache_fraction=*/false,
         /*uses_scratchpipe_options=*/false,
         /*uses_serve_options=*/false,
         [](const ModelConfig &model, const sim::HardwareConfig &hw,
            const SystemSpec &) -> std::unique_ptr<System> {
             return std::make_unique<MultiGpuSystem>(model, hw);
         }});
}

} // namespace sp::sys
