/**
 * @file
 * String-keyed registry of system models.
 *
 * Each system registers itself under a stable CLI-friendly key
 * ("hybrid", "scratchpipe", ...) together with a one-line description
 * and two capability bits that drive SystemSpec validation. Drivers
 * build systems by name:
 *
 *   auto system = sys::Registry::build(spec, model, hardware);
 *   RunResult r = system->simulate(dataset, stats, iters, warmup);
 *
 * Registration lives next to each system's implementation (see the
 * registerXxx functions referenced from registerBuiltinSystems); a
 * new system adds one Entry and is immediately reachable from spsim,
 * every bench, and the ExperimentRunner with no driver changes.
 *
 * Unknown names fail with a nearest-name suggestion so a typo like
 * "scratchpip" points at the intended system instead of a bare list.
 */

#ifndef SP_SYS_REGISTRY_H
#define SP_SYS_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/hardware_config.h"
#include "sys/spec.h"
#include "sys/system.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Global name -> builder table for system models. */
class Registry
{
  public:
    /** Factory signature every system provides. */
    using Builder = std::function<std::unique_ptr<System>(
        const ModelConfig &, const sim::HardwareConfig &,
        const SystemSpec &)>;

    /** One registered system. */
    struct Entry
    {
        /** CLI key, e.g. "scratchpipe". */
        std::string name;
        /** One-line description for --list-systems. */
        std::string description;
        /** Does `cache=` mean anything to this system? */
        bool uses_cache_fraction = false;
        /** Do the scratchpad-only keys (policy/windows/...) apply? */
        bool uses_scratchpipe_options = false;
        /** Do the serving-only keys (rate/arrival/budget_us/...)
         *  apply? */
        bool uses_serve_options = false;
        Builder build;
    };

    /** Register a system globally; panics on duplicate names. */
    static void add(Entry entry);

    /** Instance form used by the builtin registration functions (they
     *  run inside instance()'s initialisation, where the static add()
     *  would deadlock). */
    void addEntry(Entry entry);

    /** Build a system for `spec` (spec.name keys the lookup).
     *  fatal() with a suggestion when the name is unknown; runs
     *  spec.validate() first so misuse fails before construction. */
    static std::unique_ptr<System> build(const SystemSpec &spec,
                                         const ModelConfig &model,
                                         const sim::HardwareConfig &hw);

    /** Shorthand: build "name" with an otherwise-default spec. */
    static std::unique_ptr<System> build(const std::string &name,
                                         const SystemSpec &spec,
                                         const ModelConfig &model,
                                         const sim::HardwareConfig &hw);

    /** Registered names, sorted. */
    static std::vector<std::string> names();

    /** Entry for `name`; fatal() with a suggestion when unknown. */
    static const Entry &entry(const std::string &name);

    /** True when `name` is registered. */
    static bool contains(const std::string &name);

    /** Nearest registered name by edit distance (empty when none is
     *  plausibly close). */
    static std::string suggest(const std::string &name);

  private:
    static Registry &instance();

    std::map<std::string, Entry> entries_;
};

} // namespace sp::sys

#endif // SP_SYS_REGISTRY_H
