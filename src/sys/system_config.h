/**
 * @file
 * Full model + workload configuration shared by every system model.
 *
 * One ModelConfig pins everything an experiment needs: the trace
 * geometry/locality (data::TraceConfig), the DLRM backend architecture,
 * and the optimizer. paperDefault() is the paper's Section V setup:
 * 8 tables x 10M rows x 128-dim (40 GB), 20 lookups/table, batch 2048,
 * MLPerf-DLRM-like MLP stacks. functionalScale() shrinks the tables so
 * correctness runs can materialise real floats.
 */

#ifndef SP_SYS_SYSTEM_CONFIG_H
#define SP_SYS_SYSTEM_CONFIG_H

#include <cstdint>
#include <cstddef>

#include "data/trace.h"
#include "nn/dlrm.h"

namespace sp::sys
{

/**
 * Embedding-table optimizer. The paper trains with SGD; production
 * DLRM commonly uses sparse AdaGrad for the embeddings (dense SGD for
 * the MLPs). AdaGrad keeps one accumulator per embedding element that
 * must live *with* the row -- under ScratchPipe the optimizer state
 * migrates through the scratchpad alongside the embedding values,
 * doubling fill/evict/write-back bytes.
 */
enum class Optimizer
{
    Sgd,
    AdaGrad,
};

const char *optimizerName(Optimizer optimizer);

/** Everything that defines one training workload. */
struct ModelConfig
{
    /** Trace geometry, locality and seed. */
    data::TraceConfig trace;
    /** Embedding vector dimension (paper default 128). */
    size_t embedding_dim = 128;
    /** Bottom-MLP hidden widths (projection to dim is appended). */
    std::vector<size_t> bottom_hidden = {512, 256};
    /** Top-MLP hidden widths (1-wide logit layer is appended). */
    std::vector<size_t> top_hidden = {1024, 1024, 512, 256};
    /** SGD learning rate. */
    float learning_rate = 0.01f;
    /** Embedding-table optimizer (MLPs always train with SGD). */
    Optimizer optimizer = Optimizer::Sgd;
    /** AdaGrad epsilon (ignored under SGD). */
    float adagrad_eps = 1e-8f;
    /** Seed for model-parameter initialisation. */
    uint64_t model_seed = 7;

    /** Bytes of per-row optimizer state (0 for SGD). */
    size_t optimizerStateBytesPerRow() const
    {
        return optimizer == Optimizer::AdaGrad
                   ? embedding_dim * sizeof(float)
                   : 0;
    }

    /** Bytes per embedding row. */
    size_t rowBytes() const { return embedding_dim * sizeof(float); }

    /** Total model bytes across all embedding tables. */
    uint64_t embeddingModelBytes() const
    {
        return static_cast<uint64_t>(trace.num_tables) *
               trace.rows_per_table * rowBytes();
    }

    /** The DLRM backend architecture this config implies. */
    nn::DlrmConfig dlrmConfig() const;

    /** Cross-field validation; fatal() on inconsistency. */
    void validate() const;

    /** The paper's Section V configuration (40 GB model). */
    static ModelConfig paperDefault();

    /** Small dense-table configuration for functional runs. */
    static ModelConfig functionalScale();
};

} // namespace sp::sys

#endif // SP_SYS_SYSTEM_CONFIG_H
