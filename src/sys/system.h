/**
 * @file
 * Polymorphic interface over the evaluated system design points.
 *
 * Every timing-mode system model (paper Section VI: hybrid CPU-GPU,
 * static cache, straw-man, ScratchPipe, 8-GPU) implements this
 * interface so drivers, benches and the ExperimentRunner can hold a
 * `std::unique_ptr<System>` and treat all design points uniformly.
 * Instances are built from a SystemSpec through sys::Registry; direct
 * construction of the concrete classes remains available for tests.
 */

#ifndef SP_SYS_SYSTEM_H
#define SP_SYS_SYSTEM_H

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"

namespace sp::sys
{

/** Abstract system model: simulate a workload, describe yourself. */
class System
{
  public:
    virtual ~System() = default;

    /**
     * Simulate `iterations` measured batches of `dataset` after
     * `warmup` steady-state batches (timing only).
     * @param stats Shared per-batch unique-ID counts.
     */
    virtual RunResult simulate(const data::TraceDataset &dataset,
                               const BatchStats &stats,
                               uint64_t iterations,
                               uint64_t warmup = 0) const = 0;

    /** Display name, identical to RunResult::system_name. */
    virtual std::string name() const = 0;

    /** One-line description (paper reference + role). */
    virtual std::string description() const = 0;
};

} // namespace sp::sys

#endif // SP_SYS_SYSTEM_H
