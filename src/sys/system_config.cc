#include "sys/system_config.h"

#include "common/logging.h"

namespace sp::sys
{

const char *
optimizerName(Optimizer optimizer)
{
    switch (optimizer) {
      case Optimizer::Sgd:
        return "SGD";
      case Optimizer::AdaGrad:
        return "AdaGrad";
    }
    panic("unknown Optimizer value");
}

nn::DlrmConfig
ModelConfig::dlrmConfig() const
{
    nn::DlrmConfig config;
    config.num_tables = trace.num_tables;
    config.embedding_dim = embedding_dim;
    config.dense_features = trace.dense_features;
    config.bottom_hidden = bottom_hidden;
    config.top_hidden = top_hidden;
    config.learning_rate = learning_rate;
    return config;
}

void
ModelConfig::validate() const
{
    fatalIf(embedding_dim == 0, "embedding_dim must be positive");
    fatalIf(trace.num_tables == 0, "need at least one embedding table");
    fatalIf(learning_rate <= 0.0f, "learning rate must be positive");
}

ModelConfig
ModelConfig::paperDefault()
{
    ModelConfig config;
    config.trace.num_tables = 8;
    config.trace.rows_per_table = 10'000'000;
    config.trace.lookups_per_table = 20;
    config.trace.batch_size = 2048;
    config.trace.dense_features = 13;
    config.embedding_dim = 128;
    return config;
}

ModelConfig
ModelConfig::functionalScale()
{
    ModelConfig config;
    config.trace.num_tables = 4;
    config.trace.rows_per_table = 4096;
    config.trace.lookups_per_table = 4;
    config.trace.batch_size = 32;
    config.trace.dense_features = 8;
    config.embedding_dim = 16;
    config.bottom_hidden = {32};
    config.top_hidden = {64, 32};
    return config;
}

} // namespace sp::sys
