/**
 * @file
 * ExperimentRunner: one workload, many systems.
 *
 * Every evaluation in the paper compares several system design points
 * over the *same* trace. The runner owns that shared state -- it
 * generates the trace dataset and the per-batch statistics exactly
 * once (in parallel over the shared worker pool) -- and then
 * simulates any number of SystemSpecs over it, sequentially or on a
 * bounded thread pool (the timing models are independent and
 * read-only over the dataset).
 *
 *   ExperimentRunner runner(model, hw, {.iterations = 10, .warmup = 5});
 *   auto results = runner.runAll({SystemSpec::parse("hybrid"),
 *                                 SystemSpec::parse("static:cache=0.02"),
 *                                 SystemSpec::parse("scratchpipe")});
 *
 * Results come back in spec order; toJson(results) serialises a whole
 * comparison for downstream tooling.
 */

#ifndef SP_SYS_EXPERIMENT_H
#define SP_SYS_EXPERIMENT_H

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "sim/hardware_config.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/spec.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Iteration counts and execution mode of one experiment. */
struct ExperimentOptions
{
    /** Measured iterations per system. */
    uint64_t iterations = 10;
    /** Steady-state warm-up iterations before measurement. */
    uint64_t warmup = 5;
    /**
     * Systems simulated concurrently by runAll (bounded, replacing
     * the old thread-per-spec spawn): 1 (default) sweeps
     * sequentially, N caps the fan-out at N in-flight systems, and 0
     * means ThreadPool::defaultThreads() (hardware_concurrency,
     * overridable via SP_JOBS).
     */
    uint32_t jobs = 1;
    /**
     * When false (default) a spec whose simulation throws is recorded
     * as a failed RunResult (RunResult::failed()) and the sweep
     * continues; when true the first failure aborts runAll by
     * rethrowing (spsim --fail-fast).
     */
    bool fail_fast = false;
    /**
     * Replay an externally recorded trace file instead of generating
     * one (spsim --workload replay=...). The file's embedded
     * TraceConfig -- geometry, locality, seed, workload shaping --
     * replaces model.trace wholesale, so every system simulates
     * exactly the recorded ID stream. The content-addressed trace
     * cache is bypassed: the file itself is the trace.
     */
    std::string replay_path;
};

/** Shared-workload driver for comparing system design points. */
class ExperimentRunner
{
  public:
    /**
     * Validates `model` and materialises the trace + statistics for
     * warmup + iterations batches (plus the pipeline look-ahead).
     */
    ExperimentRunner(const ModelConfig &model,
                     const sim::HardwareConfig &hardware,
                     const ExperimentOptions &options = {});

    const ModelConfig &model() const { return model_; }
    const sim::HardwareConfig &hardware() const { return hardware_; }
    const ExperimentOptions &options() const { return options_; }
    const data::TraceDataset &dataset() const { return *dataset_; }
    const BatchStats &stats() const { return *stats_; }

    /** Build `spec`'s system from the registry and simulate it. */
    RunResult run(const SystemSpec &spec) const;

    /** Shorthand for run(SystemSpec::parse(text)). */
    RunResult run(const std::string &spec_text) const;

    /**
     * Simulate every spec over the shared workload, in spec order.
     * With options().jobs != 1 the systems fan out over the shared
     * worker pool, at most effectiveJobs() in flight at once; results
     * are bit-identical to a sequential sweep (systems are
     * independent and read-only over the shared dataset).
     *
     * Failure isolation: a spec whose simulation throws yields a
     * RunResult with failed() set and the others still run -- one bad
     * design point cannot take down a forty-spec sweep. Exceptions:
     * with options().fail_fast the first failure is rethrown, and a
     * panic() (internal invariant violation) always propagates --
     * results near a library bug are not trustworthy enough to keep
     * sweeping over.
     */
    std::vector<RunResult> runAll(const std::vector<SystemSpec> &specs) const;

    /** Effective parallel width of runAll (resolves jobs == 0). */
    size_t effectiveJobs() const;

  private:
    ModelConfig model_;
    sim::HardwareConfig hardware_;
    ExperimentOptions options_;
    std::unique_ptr<data::TraceDataset> dataset_;
    std::unique_ptr<BatchStats> stats_;
};

} // namespace sp::sys

#endif // SP_SYS_EXPERIMENT_H
