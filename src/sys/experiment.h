/**
 * @file
 * ExperimentRunner: one workload, many systems.
 *
 * Every evaluation in the paper compares several system design points
 * over the *same* trace. The runner owns that shared state -- it
 * generates the trace dataset and the per-batch statistics exactly
 * once -- and then simulates any number of SystemSpecs over it,
 * sequentially or with one std::thread per system (the timing models
 * are independent and read-only over the dataset).
 *
 *   ExperimentRunner runner(model, hw, {.iterations = 10, .warmup = 5});
 *   auto results = runner.runAll({SystemSpec::parse("hybrid"),
 *                                 SystemSpec::parse("static:cache=0.02"),
 *                                 SystemSpec::parse("scratchpipe")});
 *
 * Results come back in spec order; toJson(results) serialises a whole
 * comparison for downstream tooling.
 */

#ifndef SP_SYS_EXPERIMENT_H
#define SP_SYS_EXPERIMENT_H

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "sim/hardware_config.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/spec.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Iteration counts and execution mode of one experiment. */
struct ExperimentOptions
{
    /** Measured iterations per system. */
    uint64_t iterations = 10;
    /** Steady-state warm-up iterations before measurement. */
    uint64_t warmup = 5;
    /** Simulate systems concurrently, one std::thread each. */
    bool parallel = false;
};

/** Shared-workload driver for comparing system design points. */
class ExperimentRunner
{
  public:
    /**
     * Validates `model` and materialises the trace + statistics for
     * warmup + iterations batches (plus the pipeline look-ahead).
     */
    ExperimentRunner(const ModelConfig &model,
                     const sim::HardwareConfig &hardware,
                     const ExperimentOptions &options = {});

    const ModelConfig &model() const { return model_; }
    const sim::HardwareConfig &hardware() const { return hardware_; }
    const ExperimentOptions &options() const { return options_; }
    const data::TraceDataset &dataset() const { return *dataset_; }
    const BatchStats &stats() const { return *stats_; }

    /** Build `spec`'s system from the registry and simulate it. */
    RunResult run(const SystemSpec &spec) const;

    /** Shorthand for run(SystemSpec::parse(text)). */
    RunResult run(const std::string &spec_text) const;

    /**
     * Simulate every spec over the shared workload, in spec order.
     * With options().parallel each system runs on its own thread;
     * the first error (fatal() or panic()) is rethrown on the caller.
     */
    std::vector<RunResult> runAll(const std::vector<SystemSpec> &specs) const;

  private:
    ModelConfig model_;
    sim::HardwareConfig hardware_;
    ExperimentOptions options_;
    std::unique_ptr<data::TraceDataset> dataset_;
    std::unique_ptr<BatchStats> stats_;
};

} // namespace sp::sys

#endif // SP_SYS_EXPERIMENT_H
