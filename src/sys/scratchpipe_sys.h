/**
 * @file
 * The ScratchPipe system (paper Section IV) and its straw-man variant.
 *
 * Six stages -- [Load, Plan, Collect, Exchange, Insert, Train] -- run
 * the dynamic always-hit GPU scratchpad. The timing model executes the
 * real controller (Hit-Map, Hold masks, Algorithm 1) over the trace to
 * obtain the exact per-batch fill/evict counts, then charges each
 * stage's traffic to the hardware resources:
 *
 *   Load      host reads the next mini-batch's sparse IDs;
 *   Plan      IDs H2D + Hit-Map query + victim planning (GPU);
 *   Collect   CPU gathers missed rows; GPU reads victim rows;
 *   Exchange  PCIe H2D fills || D2H write-backs (full duplex);
 *   Insert    GPU fills Storage; CPU applies write-backs;
 *   Train     embedding fwd/bwd at HBM speed + MLP training.
 *
 * Pipelined mode retires one iteration per steady-state cycle
 * (sim::solvePipeline); the straw-man executes the same stages
 * sequentially (paper Section IV-B) with windows shrunk to the current
 * batch only.
 */

#ifndef SP_SYS_SCRATCHPIPE_SYS_H
#define SP_SYS_SCRATCHPIPE_SYS_H

#include "cache/probe_kernel.h"
#include "cache/replacement.h"
#include "data/dataset.h"
#include "sim/latency_model.h"
#include "sim/pipeline_solver.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/system.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Tunables of the ScratchPipe runtime. */
struct ScratchPipeOptions
{
    /** Nominal scratchpad capacity as a fraction of each table. */
    double cache_fraction = 0.10;
    /** Pipelined ScratchPipe (true) or sequential straw-man (false). */
    bool pipelined = true;
    /** Victim-selection policy (paper default LRU). */
    cache::PolicyKind policy = cache::PolicyKind::Lru;
    /** Past window width (paper: 3). Ignored by the straw-man. */
    uint32_t past_window = 3;
    /** Future window width (paper: 2). Ignored by the straw-man. */
    uint32_t future_window = 2;
    /**
     * Grow the scratchpad to the §VI-D worst-case window working set
     * when the nominal fraction falls below it (required for the
     * always-hit guarantee on adversarial traces).
     */
    bool enforce_capacity_bound = true;
    /**
     * Begin measurement from the LRU steady state (scratchpad
     * pre-filled with the hottest rows) instead of a cold cache; the
     * paper reports steady-state iteration latencies.
     */
    bool warm_start = true;
    /**
     * Engine knob (no effect on modeled timings): overlap batch
     * i+1's per-table [Plan] fan-out with batch i's demand/traffic
     * accounting -- the simulator's two-deep software pipeline.
     * Accounting is a pure reduction over the previous batch's
     * outcomes, so results are bit-identical with or without the
     * overlap; this only changes how the host schedules the work.
     * Spec key: overlap=0/1.
     */
    bool overlap_planning = true;
    /**
     * Engine knob: shard each table's Hit-Map mark-pass probes into
     * this many contiguous ID ranges over the worker pool
     * (ControllerConfig::plan_shards). 1 = unsharded; 0 = one shard
     * per pool thread. Bit-identical at any width. Spec key: shard=N.
     */
    uint32_t plan_shards = 1;
    /**
     * Engine knob: batched Hit-Map probe kernel for every controller
     * (ControllerConfig::probe). auto = follow SP_SIMD (scalar |
     * native); scalar/native pin it. All kernels are bit-identical
     * (the PR-5 equivalence harness), so this only moves wall-clock.
     * Spec key: probe=auto|scalar|native.
     */
    cache::ProbeMode probe = cache::ProbeMode::Auto;
};

/** Timing model of ScratchPipe / straw-man. */
class ScratchPipeSystem : public System
{
  public:
    ScratchPipeSystem(const ModelConfig &model,
                      const sim::HardwareConfig &hardware,
                      const ScratchPipeOptions &options);

    RunResult simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup = 0) const override;

    static constexpr const char *kDescriptionPipelined =
        "dynamic always-hit GPU scratchpad, six-stage pipeline "
        "(Section IV-C)";
    static constexpr const char *kDescriptionStrawman =
        "dynamic scratchpad, sequential stages (Section IV-B)";

    std::string name() const override
    {
        return options_.pipelined ? "ScratchPipe" : "Straw-man";
    }
    std::string description() const override
    {
        return options_.pipelined ? kDescriptionPipelined
                                  : kDescriptionStrawman;
    }

    /** Provisioned Storage slots per table (after the §VI-D bound). */
    uint32_t slotsPerTable() const { return slots_per_table_; }

    const ScratchPipeOptions &options() const { return options_; }

  private:
    ModelConfig model_;
    sim::LatencyModel latency_;
    ScratchPipeOptions options_;
    uint32_t slots_per_table_ = 0;
};

} // namespace sp::sys

#endif // SP_SYS_SCRATCHPIPE_SYS_H
