#include "sys/static_sys.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "emb/embedding_ops.h"
#include "emb/traffic.h"
#include "nn/flops.h"
#include "sys/registry.h"

namespace sp::sys
{

StaticCacheSystem::StaticCacheSystem(const ModelConfig &model,
                                     const sim::HardwareConfig &hardware,
                                     double cache_fraction)
    : model_(model), latency_(hardware), cache_fraction_(cache_fraction)
{
    model_.validate();
    // Written as !(in range) so NaN is rejected too.
    fatalIf(!(cache_fraction > 0.0 && cache_fraction <= 1.0),
            "cache_fraction must be in (0, 1], got ", cache_fraction);
    cached_rows_ = static_cast<uint64_t>(
        cache_fraction * static_cast<double>(model_.trace.rows_per_table));
    fatalIf(cached_rows_ == 0,
            "cache_fraction ", cache_fraction, " caches zero rows");
}

RunResult
StaticCacheSystem::simulate(const data::TraceDataset &dataset,
                            const BatchStats & /*stats*/,
                            uint64_t iterations, uint64_t warmup) const
{
    fatalIf(iterations == 0, "need at least one iteration");
    fatalIf(warmup + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");

    const auto &hw = latency_.config();
    const auto &trace = model_.trace;
    const uint64_t batch = trace.batch_size;
    const size_t rb = model_.rowBytes();
    const double n_total = static_cast<double>(trace.idsPerBatch());
    using CpuPath = sim::LatencyModel::CpuPath;

    double total_fwd = 0.0, total_bwd = 0.0, total_gpu = 0.0;
    double cpu_busy = 0.0, gpu_busy = 0.0;
    uint64_t total_hits = 0, total_ids = 0;

    // The static cache never changes contents, so warm-up batches are
    // simply skipped.
    std::vector<uint64_t> subset, unique_scratch;
    for (uint64_t i = warmup; i < warmup + iterations; ++i) {
        const auto &mini = dataset.batch(i);

        uint64_t hits = 0, misses = 0;
        emb::Traffic cpu_fwd, cpu_bwd, gpu_emb;
        for (size_t t = 0; t < trace.num_tables; ++t) {
            const auto ids = mini.ids(t);
            subset.clear();
            uint64_t table_hits = 0;
            for (uint64_t id : ids) {
                if (id < cached_rows_)
                    ++table_hits;
                else
                    subset.push_back(id);
            }
            const uint64_t table_misses = ids.size() - table_hits;
            hits += table_hits;
            misses += table_misses;

            // Unique counts within the hit/miss partitions size the
            // coalesced scatters.
            const size_t u_miss = emb::countUnique(subset, unique_scratch);
            subset.clear();
            for (uint64_t id : ids) {
                if (id < cached_rows_)
                    subset.push_back(id);
            }
            const size_t u_hit = emb::countUnique(subset, unique_scratch);

            // CPU side: gather missed rows, and the full missed-ID
            // backward (duplicate + coalesce + scatter).
            cpu_fwd += emb::gatherTraffic(table_misses, rb);
            cpu_bwd += emb::embeddingBackwardTraffic(table_misses, batch,
                                                     u_miss, rb);

            // GPU side: gather hit rows, reduce everything, and the
            // hit-ID backward against the cache.
            gpu_emb += emb::gatherTraffic(table_hits, rb);
            gpu_emb += emb::reduceTraffic(ids.size(), batch, rb);
            gpu_emb += emb::embeddingBackwardTraffic(table_hits, batch,
                                                     u_hit, rb);
        }
        total_hits += hits;
        total_ids += hits + misses;

        // [Query]: IDs up, missed IDs back.
        emb::Traffic probe;
        probe.dense_read_bytes = n_total * 16.0; // hash-table probes
        const double t_query =
            latency_.pcieTime(n_total * sizeof(uint64_t)) +
            latency_.gpuMemTime(probe) +
            latency_.pcieTime(static_cast<double>(misses) *
                              sizeof(uint64_t));

        const double t_cpu_fwd =
            latency_.cpuTime(cpu_fwd, CpuPath::Framework) +
            hw.cpu_stage_overhead;

        // Missed embeddings + dense inputs up.
        const double h2d_bytes =
            static_cast<double>(misses) * rb +
            static_cast<double>(batch) * (trace.dense_features + 1) *
                sizeof(float);
        const double t_h2d = latency_.pcieTime(h2d_bytes);

        const double flops =
            nn::dlrmIterationFlops(model_.dlrmConfig(), batch);
        const double t_gpu_train = latency_.gpuComputeTime(flops) +
                                   latency_.gpuMemTime(gpu_emb) +
                                   hw.gpu_iteration_overhead;

        // Per-sample gradients back for the missed-ID backward.
        const double t_d2h = latency_.pcieTime(
            static_cast<double>(batch) * trace.num_tables * rb);

        const double t_cpu_bwd =
            latency_.cpuTime(cpu_bwd, CpuPath::Framework) +
            hw.cpu_stage_overhead;

        total_fwd += t_cpu_fwd;
        total_bwd += t_cpu_bwd;
        total_gpu += t_query + t_h2d + t_gpu_train + t_d2h;
        cpu_busy += t_cpu_fwd + t_cpu_bwd;
        gpu_busy += t_query + t_h2d + t_gpu_train + t_d2h;
    }

    const double inv = 1.0 / static_cast<double>(iterations);
    RunResult result;
    result.system_name = name();
    result.iterations = iterations;
    result.breakdown.add("CPU embedding forward", total_fwd * inv);
    result.breakdown.add("CPU embedding backward", total_bwd * inv);
    result.breakdown.add("GPU", total_gpu * inv);
    result.seconds_per_iteration = result.breakdown.total();
    result.busy.iteration_seconds = result.seconds_per_iteration;
    result.busy.cpu_busy_seconds = cpu_busy * inv;
    result.busy.gpu_busy_seconds = gpu_busy * inv;
    result.hit_rate = total_ids == 0
                          ? 0.0
                          : static_cast<double>(total_hits) /
                                static_cast<double>(total_ids);
    result.gpu_bytes =
        static_cast<double>(cached_rows_) * trace.num_tables * rb;
    return result;
}

void
registerStaticCacheSystem(Registry &registry)
{
    registry.addEntry(
        {"static", StaticCacheSystem::kDescription,
         /*uses_cache_fraction=*/true,
         /*uses_scratchpipe_options=*/false,
         /*uses_serve_options=*/false,
         [](const ModelConfig &model, const sim::HardwareConfig &hw,
            const SystemSpec &spec) -> std::unique_ptr<System> {
             return std::make_unique<StaticCacheSystem>(
                 model, hw, spec.cacheFractionOr(0.10));
         }});
}

} // namespace sp::sys
