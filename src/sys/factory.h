/**
 * @file
 * Uniform construction of the four evaluated design points
 * (paper Section VI intro) plus the multi-GPU comparison system.
 */

#ifndef SP_SYS_FACTORY_H
#define SP_SYS_FACTORY_H

#include <string>

#include "data/dataset.h"
#include "sim/hardware_config.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** The evaluated system design points. */
enum class SystemKind
{
    Hybrid,      //!< CPU-GPU without caching (Fig. 4a)
    StaticCache, //!< CPU-GPU + static top-N GPU cache (Fig. 4b)
    Strawman,    //!< dynamic cache, sequential stages (Section IV-B)
    ScratchPipe, //!< dynamic cache, pipelined (Section IV-C)
    MultiGpu,    //!< 8-GPU model-parallel GPU-only (Section VI-F)
};

const char *systemName(SystemKind kind);

/**
 * Build and simulate one system over a shared dataset.
 *
 * @param cache_fraction GPU cache capacity as a fraction of each
 *        table; ignored by Hybrid and MultiGpu.
 */
RunResult simulateSystem(SystemKind kind, const ModelConfig &model,
                         const sim::HardwareConfig &hardware,
                         double cache_fraction,
                         const data::TraceDataset &dataset,
                         const BatchStats &stats, uint64_t iterations,
                         uint64_t warmup = 0);

} // namespace sp::sys

#endif // SP_SYS_FACTORY_H
