/**
 * @file
 * Legacy positional construction of the evaluated design points.
 *
 * DEPRECATED: new code should build systems through sys::Registry from
 * a SystemSpec (see sys/registry.h, sys/spec.h) or drive whole
 * comparisons with sys::ExperimentRunner (sys/experiment.h). This
 * header remains for one PR as a compatibility shim -- simulateSystem
 * now routes through the registry -- and will be removed once the
 * remaining callers are ported.
 */

#ifndef SP_SYS_FACTORY_H
#define SP_SYS_FACTORY_H

#include <string>

#include "data/dataset.h"
#include "sim/hardware_config.h"
#include "sys/batch_stats.h"
#include "sys/run_result.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** The evaluated system design points. */
enum class SystemKind
{
    Hybrid,      //!< CPU-GPU without caching (Fig. 4a)
    StaticCache, //!< CPU-GPU + static top-N GPU cache (Fig. 4b)
    Strawman,    //!< dynamic cache, sequential stages (Section IV-B)
    ScratchPipe, //!< dynamic cache, pipelined (Section IV-C)
    MultiGpu,    //!< 8-GPU model-parallel GPU-only (Section VI-F)
};

const char *systemName(SystemKind kind);

/** Registry key for `kind` ("hybrid", "static", ...). */
const char *systemSpecName(SystemKind kind);

/**
 * DEPRECATED: build and simulate one system over a shared dataset.
 * Use Registry::build(SystemSpec, ...) instead -- unlike this shim it
 * can express every ScratchPipeOptions field and rejects a
 * cache_fraction on systems that have no cache.
 *
 * @param cache_fraction GPU cache capacity as a fraction of each
 *        table; ignored by Hybrid and MultiGpu (legacy behaviour).
 */
RunResult simulateSystem(SystemKind kind, const ModelConfig &model,
                         const sim::HardwareConfig &hardware,
                         double cache_fraction,
                         const data::TraceDataset &dataset,
                         const BatchStats &stats, uint64_t iterations,
                         uint64_t warmup = 0);

} // namespace sp::sys

#endif // SP_SYS_FACTORY_H
