/**
 * @file
 * Online inference serving: open-loop arrivals, latency-budget
 * admission batching, and a two-tier GPU-cache -> host parameter
 * server.
 *
 * This is the production counterpart of the training sweeps -- the
 * HugeCTR-HPS / Triton-backend shape: a host-resident parameter
 * server holds every embedding table, a GPU-resident embedding cache
 * holds the hot fraction, and batched inference requests hit the GPU
 * tier first and fall through to the host for misses. Requests arrive
 * open-loop (the stream does not slow down when the server falls
 * behind), so queueing delay and SLO tails are first-class outputs:
 * the system reports p50/p99/p999 request latency and queue depth in
 * RunResult::serving next to the usual throughput metrics.
 *
 * The simulation is driven by sim::EventQueue in virtual time:
 *
 *   arrival   each request's arrival event enqueues it and schedules
 *             the next arrival (data::ArrivalProcess)
 *   admission a batch dispatches when it reaches `batch_max` requests
 *             OR when the oldest queued request has waited
 *             `latency_budget` seconds (a deadline event armed when
 *             the queue goes nonempty)
 *   dispatch  the admitted batch is classified against the GPU tier,
 *             missed rows are gathered on the host PS and shipped
 *             over PCIe, and the DLRM forward pass runs on the GPU;
 *             the (single, FIFO) server serializes batches
 *
 * Request -> ID mapping: request r plays sample r % batch_size of
 * trace batch r / batch_size, so the serving stream reuses the exact
 * Zipf/workload-zoo ID space of the training sweeps, including every
 * shaping overlay.
 *
 * GPU-tier refresh: `refresh=static` pins the hottest ranks
 * (synthetic IDs are rank-ordered, as in StaticCacheSystem);
 * lru/lfu/fifo/random run a dynamic cache (cache::HitMap +
 * cache::ReplacementPolicy) that admits every missed row, evicting
 * the policy's victim.
 *
 * Fault site "serve.request.drop": when armed, the arriving request
 * is counted dropped and excluded from latency/queue accounting; the
 * stream continues and the run completes with drops reported in
 * RunResult::serving.dropped.
 */

#ifndef SP_SYS_SERVING_H
#define SP_SYS_SERVING_H

#include <cstdint>
#include <string>

#include "cache/replacement.h"
#include "data/arrival.h"
#include "sim/latency_model.h"
#include "sys/system.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Tunables of the serve: system family (see sys/spec.h grammar). */
struct ServeOptions
{
    /** Open-loop request stream (kind, rate, burst shape). */
    data::ArrivalConfig arrival;
    /** Admission batch cap: dispatch as soon as this many requests
     *  are queued (>= 1). */
    uint32_t batch_max = 32;
    /** Admission latency budget, microseconds: dispatch a partial
     *  batch rather than let its oldest request wait longer than
     *  this. Stored in the spec's unit so the grammar round-trips. */
    double budget_us = 200.0;
    /** False: the GPU tier statically pins the hottest ranks. True:
     *  it refreshes dynamically under `policy`. */
    bool dynamic_refresh = false;
    /** Victim policy of the dynamic GPU tier. */
    cache::PolicyKind policy = cache::PolicyKind::Lru;
    /** GPU-tier capacity as a fraction of each table, in (0, 1]. */
    double cache_fraction = 0.05;

    /** Why this config is invalid, or "" (ArrivalConfig contract). */
    std::string validationError() const;
};

/** Two-tier online inference server over the trace's request stream. */
class ServingSystem : public System
{
  public:
    static constexpr const char *kDescription =
        "online inference serving: open-loop arrivals, latency-budget "
        "admission batching, GPU embedding cache over a host parameter "
        "server (HugeCTR-HPS-style), SLO percentiles";

    ServingSystem(const ModelConfig &model,
                  const sim::HardwareConfig &hardware,
                  const ServeOptions &options);

    /**
     * Serve (warmup + iterations) * batch_size requests; the first
     * warmup * batch_size warm the GPU tier and the server without
     * being measured. Deterministic per (model, options, seed).
     */
    RunResult simulate(const data::TraceDataset &dataset,
                       const BatchStats &stats, uint64_t iterations,
                       uint64_t warmup = 0) const override;

    std::string name() const override { return "Serving"; }
    std::string description() const override { return kDescription; }

    uint64_t cachedRows() const { return cached_rows_; }

  private:
    ModelConfig model_;
    sim::LatencyModel latency_;
    ServeOptions options_;
    uint64_t cached_rows_ = 0;
};

} // namespace sp::sys

#endif // SP_SYS_SERVING_H
