#include "sys/checkpoint.h"

#include <fstream>

#include "common/logging.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "tensor/matrix.h"

namespace sp::sys
{

namespace
{

constexpr uint64_t kMagic = 0x53505f434b505431ull; // "SP_CKPT1"

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::ifstream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

void
writeMatrix(std::ofstream &os, const tensor::Matrix &m)
{
    writePod(os, static_cast<uint64_t>(m.rows()));
    writePod(os, static_cast<uint64_t>(m.cols()));
    os.write(reinterpret_cast<const char *>(m.data()),
             static_cast<std::streamsize>(m.size() * sizeof(float)));
}

void
readMatrixInto(std::ifstream &is, tensor::Matrix &m, const char *what)
{
    uint64_t rows = 0, cols = 0;
    readPod(is, rows);
    readPod(is, cols);
    fatalIf(rows != m.rows() || cols != m.cols(),
            "checkpoint mismatch: ", what, " is ", rows, "x", cols,
            " on disk but ", m.rows(), "x", m.cols(), " in the model");
    is.read(reinterpret_cast<char *>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(float)));
}

void
writeMlp(std::ofstream &os, const nn::Mlp &mlp)
{
    writePod(os, static_cast<uint64_t>(mlp.numLayers()));
    for (const auto &layer : mlp.layers()) {
        writeMatrix(os, layer.weights());
        writeMatrix(os, layer.bias());
    }
}

void
readMlpInto(std::ifstream &is, nn::Mlp &mlp, const char *what)
{
    uint64_t layers = 0;
    readPod(is, layers);
    fatalIf(layers != mlp.numLayers(), "checkpoint mismatch: ", what,
            " has ", layers, " layers on disk but ", mlp.numLayers(),
            " in the model");
    for (auto &layer : mlp.layers()) {
        readMatrixInto(is, layer.weights(), what);
        readMatrixInto(is, layer.bias(), what);
    }
}

} // namespace

void
saveCheckpoint(const std::string &path,
               const std::vector<emb::EmbeddingTable> &tables,
               const nn::DlrmModel &model)
{
    std::ofstream os(path, std::ios::binary);
    fatalIf(!os, "cannot open '", path, "' for writing");

    writePod(os, kMagic);
    writePod(os, static_cast<uint64_t>(tables.size()));
    for (const auto &table : tables) {
        fatalIf(!table.isDense(),
                "cannot checkpoint a phantom embedding table");
        writePod(os, table.rows());
        writePod(os, static_cast<uint64_t>(table.dim()));
        for (uint64_t r = 0; r < table.rows(); ++r) {
            os.write(reinterpret_cast<const char *>(table.row(r)),
                     static_cast<std::streamsize>(table.rowBytes()));
        }
    }
    writeMlp(os, model.bottomMlp());
    writeMlp(os, model.topMlp());
    fatalIf(!os, "I/O error while writing '", path, "'");
}

void
loadCheckpoint(const std::string &path,
               std::vector<emb::EmbeddingTable> &tables,
               nn::DlrmModel &model)
{
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open '", path, "' for reading");

    uint64_t magic = 0;
    readPod(is, magic);
    fatalIf(magic != kMagic, "'", path,
            "' is not a ScratchPipe checkpoint");

    uint64_t num_tables = 0;
    readPod(is, num_tables);
    fatalIf(num_tables != tables.size(),
            "checkpoint mismatch: ", num_tables,
            " tables on disk but ", tables.size(), " in the model");
    for (auto &table : tables) {
        fatalIf(!table.isDense(),
                "cannot restore into a phantom embedding table");
        uint64_t rows = 0, dim = 0;
        readPod(is, rows);
        readPod(is, dim);
        fatalIf(rows != table.rows() || dim != table.dim(),
                "checkpoint mismatch: table is ", rows, "x", dim,
                " on disk but ", table.rows(), "x", table.dim(),
                " in the model");
        for (uint64_t r = 0; r < table.rows(); ++r) {
            is.read(reinterpret_cast<char *>(table.row(r)),
                    static_cast<std::streamsize>(table.rowBytes()));
        }
    }
    readMlpInto(is, model.bottomMlp(), "bottom MLP");
    readMlpInto(is, model.topMlp(), "top MLP");
    fatalIf(!is, "I/O error while reading '", path, "'");
}

} // namespace sp::sys
