/**
 * @file
 * Functional (real-float) training engines.
 *
 * Timing answers "how fast"; these engines answer "is it still the
 * same algorithm". Each trainer runs genuine DLRM SGD over dense
 * embedding tables at small scale:
 *
 *  - FunctionalHybridTrainer:      the sequential reference (Fig 4a);
 *  - FunctionalStaticCacheTrainer: hits train in cache, misses in the
 *                                  CPU table (Fig 4b);
 *  - FunctionalScratchPipeTrainer: the full six-stage pipeline with
 *                                  staging buffers, per-cycle hazard
 *                                  auditing, and the always-hit
 *                                  scratchpad (Fig 10/11);
 *
 * All three use the *same* kernels in the same accumulation order, so
 * the algorithmic-equivalence property holds bit-for-bit: after N
 * iterations the embedding tables and MLP weights of every trainer are
 * identical (tests/sys/functional_equivalence_test.cc).
 */

#ifndef SP_SYS_FUNCTIONAL_H
#define SP_SYS_FUNCTIONAL_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/replacement.h"
#include "cache/static_cache.h"
#include "core/controller.h"
#include "core/hazard_audit.h"
#include "data/dataset.h"
#include "emb/embedding_table.h"
#include "nn/dlrm.h"
#include "sys/system_config.h"

namespace sp::sys
{

/** Outcome of a functional training run. */
struct FunctionalRunResult
{
    /** Per-iteration BCE losses in training order. */
    std::vector<double> losses;
    /** Per-iteration training accuracies. */
    std::vector<double> accuracies;

    /** Mean loss over the final quarter of training. */
    double finalLoss() const;
    /** Mean accuracy over the final quarter of training. */
    double finalAccuracy() const;
    /** Mean loss over the first quarter (learning-progress checks). */
    double initialLoss() const;
};

/** Dense tables initialised deterministically from the config seed. */
std::vector<emb::EmbeddingTable>
makeDenseTables(const ModelConfig &config);

/**
 * One full DLRM training step through arbitrary row accessors:
 * gather-reduce per table, DNN forward/backward, gradient
 * duplicate/coalesce/scatter per table, SGD step. Returns loss and
 * writes accuracy through `accuracy`.
 */
double functionalTrainStep(nn::DlrmModel &model,
                           std::vector<emb::RowAccessor *> &accessors,
                           const data::MiniBatch &batch,
                           const tensor::Matrix &dense,
                           const tensor::Matrix &labels, float lr,
                           double *accuracy = nullptr,
                           std::vector<emb::RowAccessor *>
                               *state_accessors = nullptr,
                           float adagrad_eps = 1e-8f);

/** Sequential hybrid CPU-GPU reference trainer. */
class FunctionalHybridTrainer
{
  public:
    explicit FunctionalHybridTrainer(const ModelConfig &config);

    /**
     * Train over batches [start_batch, start_batch + iterations).
     * The offset supports checkpoint-resume runs.
     */
    FunctionalRunResult train(const data::TraceDataset &dataset,
                              uint64_t iterations,
                              uint64_t start_batch = 0);

    const std::vector<emb::EmbeddingTable> &tables() const
    {
        return tables_;
    }
    const nn::DlrmModel &model() const { return model_; }
    /** Mutable access for checkpoint restore. */
    std::vector<emb::EmbeddingTable> &tables() { return tables_; }
    nn::DlrmModel &model() { return model_; }
    /** Per-row AdaGrad accumulators (empty under SGD). */
    const std::vector<emb::EmbeddingTable> &stateTables() const
    {
        return state_tables_;
    }

  private:
    ModelConfig config_;
    std::vector<emb::EmbeddingTable> tables_;
    std::vector<emb::EmbeddingTable> state_tables_;
    nn::DlrmModel model_;
};

/** Static top-N cache trainer (profile-ranked cache contents). */
class FunctionalStaticCacheTrainer
{
  public:
    FunctionalStaticCacheTrainer(const ModelConfig &config,
                                 double cache_fraction);

    /**
     * Profiles the first `iterations` batches to build the top-N
     * ranking, trains, then flushes cache contents back to the tables.
     */
    FunctionalRunResult train(const data::TraceDataset &dataset,
                              uint64_t iterations);

    const std::vector<emb::EmbeddingTable> &tables() const
    {
        return tables_;
    }
    const nn::DlrmModel &model() const { return model_; }

    /** ID-level hit rate observed while training. */
    double hitRate() const;

  private:
    ModelConfig config_;
    double cache_fraction_;
    std::vector<emb::EmbeddingTable> tables_;
    nn::DlrmModel model_;
    uint64_t hits_ = 0;
    uint64_t lookups_ = 0;
};

/** The six-stage pipelined ScratchPipe trainer. */
class FunctionalScratchPipeTrainer
{
  public:
    struct Options
    {
        /** Scratchpad capacity as a fraction of each table. */
        double cache_fraction = 0.25;
        /** Six-stage pipeline (true) or sequential straw-man. */
        bool pipelined = true;
        cache::PolicyKind policy = cache::PolicyKind::Lru;
        uint32_t past_window = 3;
        uint32_t future_window = 2;
        /** Grow capacity to the §VI-D worst-case bound. */
        bool enforce_capacity_bound = true;
        /** Run the per-cycle hazard auditor (pipelined mode only). */
        bool audit = true;
        /**
         * Mark-pass probe shards per controller (see
         * ControllerConfig::plan_shards); 0 = one shard per pool
         * thread, matching the shard= spec key. Engine knob only:
         * training results are bit-identical at any width.
         */
        uint32_t plan_shards = 1;
        /**
         * Batched Hit-Map probe kernel (ControllerConfig::probe),
         * matching the probe= spec key. Engine knob only: every
         * kernel is bit-identical.
         */
        cache::ProbeMode probe = cache::ProbeMode::Auto;
    };

    FunctionalScratchPipeTrainer(const ModelConfig &config,
                                 const Options &options);

    /**
     * Train and then flush all resident rows back into the CPU
     * tables, leaving tables() directly comparable with the other
     * trainers'.
     */
    FunctionalRunResult train(const data::TraceDataset &dataset,
                              uint64_t iterations);

    const std::vector<emb::EmbeddingTable> &tables() const
    {
        return tables_;
    }
    const nn::DlrmModel &model() const { return model_; }
    const core::HazardAuditor &auditor() const { return auditor_; }
    /** Per-row AdaGrad accumulators (empty under SGD). */
    const std::vector<emb::EmbeddingTable> &stateTables() const
    {
        return state_tables_;
    }

    /** ID-level scratchpad hit rate observed at [Plan]. */
    double hitRate() const;

    /** Aggregate controller statistics across tables. */
    core::ControllerStats aggregateStats() const;

  private:
    /** Per-table staged data of one in-flight mini-batch. */
    struct StagedTable
    {
        core::PlanResult plan;
        tensor::Matrix fill_values;
        tensor::Matrix evict_values;
        // Optimizer state travels with the rows (AdaGrad only).
        tensor::Matrix fill_state;
        tensor::Matrix evict_state;
    };
    struct InFlight
    {
        uint64_t batch_index = 0;
        std::vector<StagedTable> per_table;
    };

    void planBatch(const data::TraceDataset &dataset, uint64_t index);
    void collectBatch(uint64_t index);
    void insertBatch(uint64_t index);
    void trainBatch(const data::TraceDataset &dataset, uint64_t index,
                    FunctionalRunResult &result);

    ModelConfig config_;
    Options options_;
    std::vector<emb::EmbeddingTable> tables_;
    std::vector<emb::EmbeddingTable> state_tables_;
    nn::DlrmModel model_;
    std::vector<core::ScratchPipeController> controllers_;
    // Scratchpad-resident optimizer state, slot-aligned with each
    // controller's Storage array (AdaGrad only).
    std::vector<cache::SlotArray> state_storage_;
    core::HazardAuditor auditor_;
    bool auditing_ = false;
    std::unordered_map<uint64_t, InFlight> inflight_;
};

} // namespace sp::sys

#endif // SP_SYS_FUNCTIONAL_H
