/**
 * @file
 * Declarative description of one system design point to evaluate.
 *
 * A SystemSpec names a registered system plus every tunable the legacy
 * positional factory could not express: the cache fraction where it
 * applies, and the full ScratchPipeOptions surface (policy, windows,
 * warm start, capacity bound) for the scratchpad systems. Specs parse
 * from compact strings so CLI flags, bench sweeps and tests share one
 * grammar:
 *
 *   "hybrid"
 *   "static:cache=0.02"
 *   "scratchpipe:cache=0.05,policy=lfu,past=4,future=2,warm=0"
 *   "scratchpipe:overlap=1,shard=8"   (engine knobs: two-deep plan
 *                                      pipeline / mark-pass shards --
 *                                      bit-identical results, perf
 *                                      only)
 *   "scratchpipe:probe=scalar"        (pin the batched Hit-Map probe
 *                                      kernel: auto|scalar|native;
 *                                      bit-identical, perf only)
 *   "serve:rate=500000,arrival=bursty,batch_max=16,budget_us=300,
 *    refresh=lru"                     (online serving: open-loop
 *                                      arrivals, admission batching,
 *                                      two-tier cache; see
 *                                      sys/serving.h)
 *
 * validate() is registry-aware: setting `cache=` on a system that has
 * no cache (hybrid, multigpu) is a hard error, not a silent no-op --
 * the exact footgun the positional factory shipped with. Serving keys
 * on a training system (and vice versa for scratchpad keys on serve)
 * are rejected the same way.
 */

#ifndef SP_SYS_SPEC_H
#define SP_SYS_SPEC_H

#include <optional>
#include <string>

#include "sys/scratchpipe_sys.h"
#include "sys/serving.h"

namespace sp::sys
{

/** Parsed, validated description of one system to build and run. */
struct SystemSpec
{
    /** Registry key ("hybrid", "static", "strawman", "scratchpipe",
     *  "multigpu", or any later-registered system). */
    std::string name = "scratchpipe";

    /** GPU cache/scratchpad capacity as a fraction of each table.
     *  Unset means the system's default; setting it for a cache-less
     *  system is a validation error. */
    std::optional<double> cache_fraction;

    /** Scratchpad tunables for the scratchpipe/strawman systems.
     *  `pipelined` is ignored (the name decides it); `cache_fraction`
     *  inside is superseded by the field above when that is set. */
    ScratchPipeOptions scratchpipe;

    /** True when any scratchpad-only key (policy/past/future/warm/
     *  bound/overlap/shard/probe) was explicitly given; lets
     *  validate() reject them on systems that have no scratchpad. */
    bool scratchpipe_tuned = false;

    /** Serving tunables for the serve system family. `cache_fraction`
     *  inside is superseded by the field above when that is set. */
    ServeOptions serve;

    /** True when any serving-only key (arrival/rate/batch_max/
     *  budget_us/refresh/burst_x/burst_on_us/burst_off_us) was
     *  explicitly given; lets validate() reject them on systems that
     *  do not serve requests. */
    bool serve_tuned = false;

    /**
     * Parse "name[:key=value,...]". Keys: cache, policy, past, future,
     * warm, bound, overlap, shard, probe, and the serving keys
     * arrival, rate, batch_max, budget_us, refresh, burst_x,
     * burst_on_us, burst_off_us. fatal() on unknown keys or malformed
     * values; the system name itself is checked by
     * validate()/Registry::build.
     */
    static SystemSpec parse(const std::string &text);

    /** Convenience: `name` with `cache=fraction` (sweep helper). */
    static SystemSpec withCache(const std::string &name, double fraction);

    /** Canonical spec string (round-trips through parse()). */
    std::string summary() const;

    /**
     * Registry-aware validation: the name must be registered, cache
     * and scratchpad keys must be meaningful for that system, and a
     * set cache fraction must lie in (0, 1]. fatal() with an
     * actionable message (including nearest-name suggestions for
     * typos) otherwise.
     */
    void validate() const;

    /** The cache fraction to build with (`fallback` when unset). */
    double cacheFractionOr(double fallback) const
    {
        return cache_fraction.value_or(fallback);
    }

    /** ScratchPipeOptions with the spec's cache fraction folded in. */
    ScratchPipeOptions scratchPipeOptions(bool pipelined) const;

    /** ServeOptions with the spec's cache fraction folded in. */
    ServeOptions serveOptions() const;
};

} // namespace sp::sys

#endif // SP_SYS_SPEC_H
