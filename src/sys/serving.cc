#include "sys/serving.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "cache/hit_map.h"
#include "common/fault.h"
#include "common/logging.h"
#include "emb/traffic.h"
#include "metrics/percentile.h"
#include "nn/flops.h"
#include "sim/event_queue.h"
#include "sys/registry.h"

namespace sp::sys
{

namespace
{

/**
 * One table's GPU embedding-cache tier. Static mode pins the hottest
 * `capacity` ranks (synthetic IDs are rank-ordered, so `id < capacity`
 * is the hot-set test, as in StaticCacheSystem). Dynamic mode runs a
 * HitMap + ReplacementPolicy cache that admits every missed row.
 */
class TierCache
{
  public:
    TierCache(bool dynamic, uint64_t capacity, cache::PolicyKind kind,
              uint64_t seed)
        : dynamic_(dynamic), capacity_(capacity)
    {
        if (!dynamic_)
            return;
        // Slot indices are 32-bit (HitMap contract); a serving tier
        // beyond 2^32 - 2 rows per table would need sharded maps.
        fatalIf(capacity_ >= 0xffffffffull,
                "serve: GPU tier of ", capacity_,
                " rows per table exceeds the 32-bit slot space");
        map_ = std::make_unique<cache::HitMap>(
            static_cast<size_t>(capacity_));
        policy_ = cache::makePolicy(kind, seed);
        policy_->reset(static_cast<uint32_t>(capacity_));
        slot_key_.resize(static_cast<size_t>(capacity_), 0);
    }

    /** True when `id` is GPU-resident; dynamic mode admits misses. */
    bool lookup(uint64_t id)
    {
        if (!dynamic_)
            return id < capacity_;
        uint32_t slot = map_->find(id);
        if (slot != cache::HitMap::kNotFound) {
            policy_->touch(slot);
            return true;
        }
        if (used_ < capacity_) {
            slot = static_cast<uint32_t>(used_++);
        } else {
            slot = policy_->chooseVictim([](uint32_t) { return true; });
            map_->erase(slot_key_[slot]);
        }
        map_->insert(id, slot);
        slot_key_[slot] = id;
        policy_->touch(slot);
        return false;
    }

  private:
    bool dynamic_;
    uint64_t capacity_;
    uint64_t used_ = 0;
    std::unique_ptr<cache::HitMap> map_;
    std::unique_ptr<cache::ReplacementPolicy> policy_;
    std::vector<uint64_t> slot_key_;
};

/** A request waiting for admission. */
struct Pending
{
    double arrival = 0.0;
    uint64_t index = 0;
};

/** All mutable state of one serving simulation. */
struct ServeContext
{
    // Wiring (const for the whole run).
    const data::TraceDataset &dataset;
    const sim::LatencyModel &latency;
    const ModelConfig &model;
    const ServeOptions &options;
    uint64_t total_requests = 0;
    uint64_t warm_requests = 0;

    // Virtual-time machinery.
    sim::EventQueue events;
    data::ArrivalProcess arrivals;
    std::vector<Pending> queue;
    std::vector<TierCache> tiers;
    double server_free = 0.0;

    // Measured outcomes.
    metrics::PercentileReservoir latencies;
    double wait_sum = 0.0;
    double service_sum = 0.0;
    double cpu_busy = 0.0;
    double gpu_busy = 0.0;
    double depth_sum = 0.0;
    uint64_t depth_samples = 0;
    uint64_t depth_max = 0;
    uint64_t hits = 0;
    uint64_t ids = 0;
    uint64_t served = 0;
    uint64_t dropped = 0;
    uint64_t batches = 0;
    double first_measured_arrival = -1.0;
    double last_completion = 0.0;

    ServeContext(const data::TraceDataset &dataset_,
                 const sim::LatencyModel &latency_,
                 const ModelConfig &model_, const ServeOptions &options_)
        : dataset(dataset_), latency(latency_), model(model_),
          options(options_), arrivals(options_.arrival, model_.trace.seed)
    {
    }

    void scheduleArrival(uint64_t request);
    void onArrival(uint64_t request, double when);
    void dispatch(double admit);
    double serviceTime(uint64_t admitted_hits, uint64_t admitted_misses,
                       uint64_t admitted, bool measured);
};

void
ServeContext::scheduleArrival(uint64_t request)
{
    events.schedule(arrivals.next(), [this, request] {
        onArrival(request, events.now());
    });
}

void
ServeContext::onArrival(uint64_t request, double when)
{
    // Chain the stream: each arrival schedules the next so the event
    // queue never holds more than one future arrival.
    if (request + 1 < total_requests)
        scheduleArrival(request + 1);

    const bool measured = request >= warm_requests;
    if (measured && first_measured_arrival < 0.0)
        first_measured_arrival = when;

    // serve.request.drop: admission-control fault. The documented
    // degradation: this request is counted dropped and excluded from
    // latency/queue accounting; the stream and the run continue.
    bool drop = false;
    try {
        SP_FAULT_POINT("serve.request.drop");
    } catch (const common::fault::FaultInjectedError &) {
        drop = true;
    }
    if (drop) {
        if (measured)
            ++dropped;
        return;
    }

    queue.push_back(Pending{when, request});
    if (measured) {
        depth_sum += static_cast<double>(queue.size());
        ++depth_samples;
        depth_max = std::max<uint64_t>(depth_max, queue.size());
    }

    if (queue.size() >= options.batch_max) {
        dispatch(when);
    } else if (queue.size() == 1) {
        // Arm the admission deadline for this queue generation. If the
        // batch fills (or a deadline dispatches it) first, the front
        // index no longer matches and the stale timer is a no-op.
        events.schedule(when + options.budget_us * 1e-6,
                        [this, request] {
            if (!queue.empty() && queue.front().index == request)
                dispatch(events.now());
        });
    }
}

void
ServeContext::dispatch(double admit)
{
    const size_t num_tables = model.trace.num_tables;
    const size_t lookups = model.trace.lookups_per_table;
    const uint64_t trace_batch = model.trace.batch_size;

    uint64_t batch_hits = 0, batch_misses = 0;
    bool measured = false;
    for (const Pending &request : queue) {
        measured = measured || request.index >= warm_requests;
        const auto &mini = dataset.batch(request.index / trace_batch);
        const size_t sample =
            static_cast<size_t>(request.index % trace_batch);
        for (size_t t = 0; t < num_tables; ++t) {
            const auto sample_ids =
                mini.ids(t).subspan(sample * lookups, lookups);
            for (const uint64_t id : sample_ids) {
                if (tiers[t].lookup(id))
                    ++batch_hits;
                else
                    ++batch_misses;
            }
        }
    }

    const uint64_t admitted = queue.size();
    const double service =
        serviceTime(batch_hits, batch_misses, admitted, measured);
    const double start = std::max(admit, server_free);
    const double completion = start + service;
    server_free = completion;

    for (const Pending &request : queue) {
        if (request.index < warm_requests)
            continue;
        latencies.add(completion - request.arrival);
        wait_sum += start - request.arrival;
        service_sum += service;
        ++served;
    }
    if (measured) {
        ++batches;
        hits += batch_hits;
        ids += batch_hits + batch_misses;
        last_completion = completion;
    }
    queue.clear();

    // Advance the virtual clock past the completion so events.now()
    // ends at the drain point of the last batch.
    events.schedule(completion, [] {});
}

double
ServeContext::serviceTime(uint64_t admitted_hits,
                          uint64_t admitted_misses, uint64_t admitted,
                          bool measured)
{
    const auto &hw = latency.config();
    const size_t rb = model.rowBytes();
    const double n_ids =
        static_cast<double>(admitted_hits + admitted_misses);
    using CpuPath = sim::LatencyModel::CpuPath;

    // [Query] IDs up, probe the GPU tier, missed IDs back to the host.
    emb::Traffic probe;
    probe.dense_read_bytes = n_ids * 16.0; // hash-table probes
    const double t_query =
        latency.pcieTime(n_ids * sizeof(uint64_t)) +
        latency.gpuMemTime(probe) +
        latency.pcieTime(static_cast<double>(admitted_misses) *
                         sizeof(uint64_t));

    // Host parameter server gathers the missed rows.
    const double t_host =
        latency.cpuTime(emb::gatherTraffic(admitted_misses, rb),
                        CpuPath::Framework) +
        hw.cpu_serve_overhead;

    // Missed embeddings + dense inputs up.
    const double h2d_bytes =
        static_cast<double>(admitted_misses) * rb +
        static_cast<double>(admitted) * (model.trace.dense_features + 1) *
            sizeof(float);
    const double t_h2d = latency.pcieTime(h2d_bytes);

    // GPU: gather hit rows, reduce per sample, insert refreshed rows
    // (dynamic tier writes every missed row back), forward pass.
    emb::Traffic gpu;
    gpu += emb::gatherTraffic(admitted_hits, rb);
    for (size_t t = 0; t < model.trace.num_tables; ++t)
        gpu += emb::reduceTraffic(
            admitted * model.trace.lookups_per_table, admitted, rb);
    if (options.dynamic_refresh)
        gpu.sparse_write_bytes +=
            static_cast<double>(admitted_misses) * rb;
    const double flops = nn::dlrmForwardFlops(
        model.dlrmConfig(), static_cast<size_t>(admitted));
    const double t_gpu = latency.gpuComputeTime(flops) +
                         latency.gpuMemTime(gpu) + hw.gpu_serve_overhead;

    // Predictions back (one float per request).
    const double t_d2h = latency.pcieTime(
        static_cast<double>(admitted) * sizeof(float));

    if (measured) {
        cpu_busy += t_host;
        gpu_busy += t_query + t_h2d + t_gpu + t_d2h;
    }
    return t_query + t_host + t_h2d + t_gpu + t_d2h;
}

} // namespace

std::string
ServeOptions::validationError() const
{
    const std::string arrival_problem = arrival.validationError();
    if (!arrival_problem.empty())
        return arrival_problem;
    if (batch_max < 1)
        return "batch_max must be at least 1";
    // Written as !(in range) so NaN is rejected too.
    if (!(budget_us >= 0.0) || !std::isfinite(budget_us))
        return "budget_us must be a non-negative, finite latency "
               "budget (microseconds)";
    if (!(cache_fraction > 0.0 && cache_fraction <= 1.0))
        return "cache fraction must be in (0, 1]";
    return "";
}

ServingSystem::ServingSystem(const ModelConfig &model,
                             const sim::HardwareConfig &hardware,
                             const ServeOptions &options)
    : model_(model), latency_(hardware), options_(options)
{
    model_.validate();
    const std::string problem = options_.validationError();
    fatalIf(!problem.empty(), "serve spec: ", problem);
    cached_rows_ = static_cast<uint64_t>(
        options_.cache_fraction *
        static_cast<double>(model_.trace.rows_per_table));
    fatalIf(cached_rows_ == 0, "serve: cache fraction ",
            options_.cache_fraction, " caches zero rows per table");
}

RunResult
ServingSystem::simulate(const data::TraceDataset &dataset,
                        const BatchStats & /*stats*/,
                        uint64_t iterations, uint64_t warmup) const
{
    fatalIf(iterations == 0, "need at least one iteration");
    fatalIf(warmup + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");

    ServeContext ctx(dataset, latency_, model_, options_);
    ctx.total_requests =
        (warmup + iterations) * model_.trace.batch_size;
    ctx.warm_requests = warmup * model_.trace.batch_size;
    ctx.queue.reserve(options_.batch_max);
    ctx.latencies.reserve(static_cast<size_t>(iterations) *
                          model_.trace.batch_size);
    for (size_t t = 0; t < model_.trace.num_tables; ++t)
        ctx.tiers.emplace_back(options_.dynamic_refresh, cached_rows_,
                               options_.policy,
                               model_.trace.seed + 0x5e57e * (t + 1));

    ctx.scheduleArrival(0);
    // splint:hot-path-begin(serve-event-drain)
    while (ctx.events.runNext()) {
    }
    // splint:hot-path-end

    const double span =
        ctx.last_completion - std::max(ctx.first_measured_arrival, 0.0);
    RunResult result;
    result.system_name = name();
    result.iterations = iterations;
    result.serving.enabled = true;
    result.serving.requests = ctx.served;
    result.serving.dropped = ctx.dropped;
    result.serving.batches = ctx.batches;
    result.serving.offered_rate = options_.arrival.rate;
    if (ctx.served > 0) {
        result.serving.achieved_rate =
            span > 0.0 ? static_cast<double>(ctx.served) / span : 0.0;
        result.serving.p50 = ctx.latencies.percentile(0.50);
        result.serving.p99 = ctx.latencies.percentile(0.99);
        result.serving.p999 = ctx.latencies.percentile(0.999);
        result.serving.mean = ctx.latencies.mean();
        result.serving.max = ctx.latencies.maxValue();
        const double inv_served = 1.0 / static_cast<double>(ctx.served);
        result.breakdown.add("request wait", ctx.wait_sum * inv_served);
        result.breakdown.add("request service",
                             ctx.service_sum * inv_served);
    }
    if (ctx.depth_samples > 0) {
        result.serving.mean_queue_depth =
            ctx.depth_sum / static_cast<double>(ctx.depth_samples);
        result.serving.max_queue_depth =
            static_cast<double>(ctx.depth_max);
    }
    if (ctx.batches > 0)
        result.serving.mean_batch_fill =
            static_cast<double>(ctx.served) /
            static_cast<double>(ctx.batches);

    const double inv_iters = 1.0 / static_cast<double>(iterations);
    result.seconds_per_iteration = span > 0.0 ? span * inv_iters : 0.0;
    result.busy.iteration_seconds = result.seconds_per_iteration;
    result.busy.cpu_busy_seconds = ctx.cpu_busy * inv_iters;
    result.busy.gpu_busy_seconds = ctx.gpu_busy * inv_iters;
    result.hit_rate = ctx.ids == 0
                          ? 0.0
                          : static_cast<double>(ctx.hits) /
                                static_cast<double>(ctx.ids);
    // Cached rows plus ~16 B of HitMap metadata per dynamic slot.
    result.gpu_bytes =
        static_cast<double>(cached_rows_) * model_.trace.num_tables *
        (model_.rowBytes() + (options_.dynamic_refresh ? 16.0 : 0.0));
    return result;
}

void
registerServingSystem(Registry &registry)
{
    registry.addEntry(
        {"serve", ServingSystem::kDescription,
         /*uses_cache_fraction=*/true,
         /*uses_scratchpipe_options=*/false,
         /*uses_serve_options=*/true,
         [](const ModelConfig &model, const sim::HardwareConfig &hw,
            const SystemSpec &spec) -> std::unique_ptr<System> {
             return std::make_unique<ServingSystem>(
                 model, hw, spec.serveOptions());
         }});
}

} // namespace sp::sys
