/**
 * @file
 * Common result record of a timing-mode simulation run.
 */

#ifndef SP_SYS_RUN_RESULT_H
#define SP_SYS_RUN_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/breakdown.h"
#include "metrics/energy.h"

namespace sp::sys
{

/** Averaged per-iteration outcome of simulating one system. */
struct RunResult
{
    std::string system_name;
    uint64_t iterations = 0;
    /** Steady-state seconds per training iteration. */
    double seconds_per_iteration = 0.0;
    /** Per-iteration latency split (system-specific stage names). */
    metrics::IterationBreakdown breakdown;
    /** Busy-time attribution for the energy model. */
    metrics::BusyTimes busy;
    /** Embedding-cache hit rate, or -1 when not applicable. */
    double hit_rate = -1.0;
    /** Provisioned GPU-side bytes (caches + metadata), 0 if none. */
    double gpu_bytes = 0.0;
    /** Binding pipeline constraint (ScratchPipe only). */
    std::string bottleneck;

    /**
     * One JSON object with every field above; hit_rate is null when
     * not applicable and bottleneck is omitted when empty. Numbers
     * round-trip exactly (max_digits10).
     */
    std::string toJson() const;
};

/** JSON array of RunResult::toJson() objects. */
std::string toJson(const std::vector<RunResult> &results);

} // namespace sp::sys

#endif // SP_SYS_RUN_RESULT_H
