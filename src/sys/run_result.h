/**
 * @file
 * Common result record of a timing-mode simulation run.
 */

#ifndef SP_SYS_RUN_RESULT_H
#define SP_SYS_RUN_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/breakdown.h"
#include "metrics/energy.h"

namespace sp::sys
{

/** SLO-facing outcome of a serving run (ServingSystem only). */
struct ServingMetrics
{
    /** False for training systems: the "serving" JSON object is
     *  omitted entirely so their output stays byte-identical. */
    bool enabled = false;
    /** Measured requests served (completed, latency recorded). */
    uint64_t requests = 0;
    /** Measured requests dropped (serve.request.drop injection). */
    uint64_t dropped = 0;
    /** Admission batches dispatched in the measured window. */
    uint64_t batches = 0;
    /** Configured open-loop arrival rate (requests/second). */
    double offered_rate = 0.0;
    /** Served requests / measured span (requests/second). */
    double achieved_rate = 0.0;
    /** Nearest-rank request-latency percentiles (seconds). */
    double p50 = 0.0;
    double p99 = 0.0;
    double p999 = 0.0;
    double mean = 0.0;
    double max = 0.0;
    /** Admission-queue depth sampled at each measured arrival. */
    double mean_queue_depth = 0.0;
    double max_queue_depth = 0.0;
    /** Served requests per dispatched batch. */
    double mean_batch_fill = 0.0;
};

/** Averaged per-iteration outcome of simulating one system. */
struct RunResult
{
    std::string system_name;
    uint64_t iterations = 0;
    /** Steady-state seconds per training iteration. */
    double seconds_per_iteration = 0.0;
    /** Per-iteration latency split (system-specific stage names). */
    metrics::IterationBreakdown breakdown;
    /** Busy-time attribution for the energy model. */
    metrics::BusyTimes busy;
    /** Embedding-cache hit rate, or -1 when not applicable. */
    double hit_rate = -1.0;
    /** Provisioned GPU-side bytes (caches + metadata), 0 if none. */
    double gpu_bytes = 0.0;
    /** Request-latency/queue metrics; enabled for serving runs only. */
    ServingMetrics serving;
    /** Binding pipeline constraint (ScratchPipe only). */
    std::string bottleneck;
    /** Why this spec's simulation failed; empty on success. A failed
     *  result carries the spec's summary in system_name and default
     *  values everywhere else. */
    std::string error;

    /** True when the spec failed and `error` explains why. */
    bool failed() const { return !error.empty(); }

    /**
     * One JSON object with every field above; hit_rate is null when
     * not applicable, and bottleneck/error are omitted when empty (a
     * clean run's JSON is byte-identical to what pre-error-state
     * builds emitted). Numbers round-trip exactly (max_digits10).
     */
    std::string toJson() const;
};

/** JSON array of RunResult::toJson() objects. */
std::string toJson(const std::vector<RunResult> &results);

/**
 * Process exit code summarising a sweep: 0 when every spec succeeded,
 * 2 when all failed (total failure), 3 when only some did (partial
 * failure). spsim's exit-code contract (1 stays reserved for
 * usage/configuration errors).
 */
int sweepExitCode(const std::vector<RunResult> &results);

} // namespace sp::sys

#endif // SP_SYS_RUN_RESULT_H
