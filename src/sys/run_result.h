/**
 * @file
 * Common result record of a timing-mode simulation run.
 */

#ifndef SP_SYS_RUN_RESULT_H
#define SP_SYS_RUN_RESULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/breakdown.h"
#include "metrics/energy.h"

namespace sp::sys
{

/** Averaged per-iteration outcome of simulating one system. */
struct RunResult
{
    std::string system_name;
    uint64_t iterations = 0;
    /** Steady-state seconds per training iteration. */
    double seconds_per_iteration = 0.0;
    /** Per-iteration latency split (system-specific stage names). */
    metrics::IterationBreakdown breakdown;
    /** Busy-time attribution for the energy model. */
    metrics::BusyTimes busy;
    /** Embedding-cache hit rate, or -1 when not applicable. */
    double hit_rate = -1.0;
    /** Provisioned GPU-side bytes (caches + metadata), 0 if none. */
    double gpu_bytes = 0.0;
    /** Binding pipeline constraint (ScratchPipe only). */
    std::string bottleneck;
    /** Why this spec's simulation failed; empty on success. A failed
     *  result carries the spec's summary in system_name and default
     *  values everywhere else. */
    std::string error;

    /** True when the spec failed and `error` explains why. */
    bool failed() const { return !error.empty(); }

    /**
     * One JSON object with every field above; hit_rate is null when
     * not applicable, and bottleneck/error are omitted when empty (a
     * clean run's JSON is byte-identical to what pre-error-state
     * builds emitted). Numbers round-trip exactly (max_digits10).
     */
    std::string toJson() const;
};

/** JSON array of RunResult::toJson() objects. */
std::string toJson(const std::vector<RunResult> &results);

/**
 * Process exit code summarising a sweep: 0 when every spec succeeded,
 * 2 when all failed (total failure), 3 when only some did (partial
 * failure). spsim's exit-code contract (1 stays reserved for
 * usage/configuration errors).
 */
int sweepExitCode(const std::vector<RunResult> &results);

} // namespace sp::sys

#endif // SP_SYS_RUN_RESULT_H
