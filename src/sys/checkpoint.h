/**
 * @file
 * Model checkpointing: save and restore a trained RecSys model (all
 * embedding tables + both MLP stacks) in a compact binary format.
 *
 * A production trainer checkpoints between epochs; a reproduction that
 * claims bit-exactness needs checkpoints too, so interrupted runs can
 * be shown to resume identically (see tests/sys/checkpoint_test.cc:
 * train(10) -> save -> load -> train(10) equals train(20) bit-for-bit).
 */

#ifndef SP_SYS_CHECKPOINT_H
#define SP_SYS_CHECKPOINT_H

#include <string>
#include <vector>

#include "emb/embedding_table.h"
#include "nn/dlrm.h"

namespace sp::sys
{

/**
 * Write tables + model parameters to `path`.
 * Tables must be dense; fatal() on I/O errors.
 */
void saveCheckpoint(const std::string &path,
                    const std::vector<emb::EmbeddingTable> &tables,
                    const nn::DlrmModel &model);

/**
 * Restore a checkpoint written by saveCheckpoint into existing
 * (geometry-matching) tables and model. fatal() on any geometry or
 * format mismatch -- a checkpoint must never be half-applied.
 */
void loadCheckpoint(const std::string &path,
                    std::vector<emb::EmbeddingTable> &tables,
                    nn::DlrmModel &model);

} // namespace sp::sys

#endif // SP_SYS_CHECKPOINT_H
