#include "sys/run_result.h"

#include <cstdio>
#include <iomanip>
#include <limits>
#include <sstream>

namespace sp::sys
{

namespace
{

std::string
escape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
emitNumber(std::ostringstream &os, double value)
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
}

} // namespace

std::string
RunResult::toJson() const
{
    std::ostringstream os;
    os << "{\"system\":\"" << escape(system_name) << "\""
       << ",\"iterations\":" << iterations
       << ",\"seconds_per_iteration\":";
    emitNumber(os, seconds_per_iteration);
    os << ",\"breakdown\":{";
    bool first = true;
    for (const auto &stage : breakdown.stages()) {
        os << (first ? "" : ",") << "\"" << escape(stage.name) << "\":";
        emitNumber(os, stage.seconds);
        first = false;
    }
    os << "},\"busy\":{\"iteration_seconds\":";
    emitNumber(os, busy.iteration_seconds);
    os << ",\"cpu_busy_seconds\":";
    emitNumber(os, busy.cpu_busy_seconds);
    os << ",\"gpu_busy_seconds\":";
    emitNumber(os, busy.gpu_busy_seconds);
    os << "},\"hit_rate\":";
    if (hit_rate >= 0.0)
        emitNumber(os, hit_rate);
    else
        os << "null";
    os << ",\"gpu_bytes\":";
    emitNumber(os, gpu_bytes);
    if (serving.enabled) {
        os << ",\"serving\":{\"requests\":" << serving.requests
           << ",\"dropped\":" << serving.dropped
           << ",\"batches\":" << serving.batches
           << ",\"offered_rate\":";
        emitNumber(os, serving.offered_rate);
        os << ",\"achieved_rate\":";
        emitNumber(os, serving.achieved_rate);
        os << ",\"latency\":{\"p50\":";
        emitNumber(os, serving.p50);
        os << ",\"p99\":";
        emitNumber(os, serving.p99);
        os << ",\"p999\":";
        emitNumber(os, serving.p999);
        os << ",\"mean\":";
        emitNumber(os, serving.mean);
        os << ",\"max\":";
        emitNumber(os, serving.max);
        os << "},\"queue_depth\":{\"mean\":";
        emitNumber(os, serving.mean_queue_depth);
        os << ",\"max\":";
        emitNumber(os, serving.max_queue_depth);
        os << "},\"mean_batch_fill\":";
        emitNumber(os, serving.mean_batch_fill);
        os << "}";
    }
    if (!bottleneck.empty())
        os << ",\"bottleneck\":\"" << escape(bottleneck) << "\"";
    if (!error.empty())
        os << ",\"error\":\"" << escape(error) << "\"";
    os << "}";
    return os.str();
}

int
sweepExitCode(const std::vector<RunResult> &results)
{
    size_t failures = 0;
    for (const RunResult &result : results)
        failures += result.failed() ? 1 : 0;
    if (failures == 0)
        return 0;
    return failures == results.size() ? 2 : 3;
}

std::string
toJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    os << "[";
    for (size_t i = 0; i < results.size(); ++i)
        os << (i > 0 ? "," : "") << "\n  " << results[i].toJson();
    os << "\n]";
    return os.str();
}

} // namespace sp::sys
