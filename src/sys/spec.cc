#include "sys/spec.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "sys/registry.h"

namespace sp::sys
{

namespace
{

double
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    fatalIf(end == nullptr || *end != '\0' || value.empty(),
            "system spec: bad number '", value, "' for key '", key, "'");
    return parsed;
}

uint32_t
parseWindow(const std::string &key, const std::string &value)
{
    const double parsed = parseDouble(key, value);
    // Bounds-check before the cast: double -> uint32_t is UB outside
    // [0, 2^32).
    fatalIf(!(parsed >= 0.0 && parsed <= 4294967295.0) ||
                parsed != std::floor(parsed),
            "system spec: '", key, "' must be a small non-negative "
            "integer, got '", value, "'");
    return static_cast<uint32_t>(parsed);
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    fatal("system spec: '", key, "' expects 0/1, got '", value, "'");
}

/** Shortest representation that round-trips through parse(). */
std::string
shortDouble(double value)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    return ec == std::errc() ? std::string(buffer, end)
                             : std::to_string(value);
}

} // namespace

SystemSpec
SystemSpec::parse(const std::string &text)
{
    SystemSpec spec;
    const size_t colon = text.find(':');
    spec.name = text.substr(0, colon);
    fatalIf(spec.name.empty(), "system spec: empty system name in '",
            text, "'");
    if (colon == std::string::npos)
        return spec;

    std::stringstream options(text.substr(colon + 1));
    std::string item;
    std::vector<std::string> seen;
    while (std::getline(options, item, ',')) {
        const size_t eq = item.find('=');
        fatalIf(eq == std::string::npos,
                "system spec: expected key=value, got '", item, "' in '",
                text, "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        // Reject duplicates instead of letting the last one win: a
        // typo like policy=lfu,policy=lru would otherwise silently
        // simulate a different system than the one on the screen.
        fatalIf(std::find(seen.begin(), seen.end(), key) != seen.end(),
                "system spec: duplicate key '", key, "' in '", text,
                "' (each option may appear once)");
        seen.push_back(key);
        if (key == "cache") {
            spec.cache_fraction = parseDouble(key, value);
        } else if (key == "policy") {
            spec.scratchpipe.policy = cache::policyFromName(value);
            spec.scratchpipe_tuned = true;
        } else if (key == "past") {
            spec.scratchpipe.past_window = parseWindow(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "future") {
            spec.scratchpipe.future_window = parseWindow(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "warm") {
            spec.scratchpipe.warm_start = parseBool(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "bound") {
            spec.scratchpipe.enforce_capacity_bound = parseBool(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "overlap") {
            spec.scratchpipe.overlap_planning = parseBool(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "shard") {
            spec.scratchpipe.plan_shards = parseWindow(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "probe") {
            spec.scratchpipe.probe = cache::probeModeFromName(value);
            spec.scratchpipe_tuned = true;
        } else if (key == "arrival") {
            spec.serve.arrival.kind = data::arrivalKindFromName(value);
            spec.serve_tuned = true;
        } else if (key == "rate") {
            spec.serve.arrival.rate = parseDouble(key, value);
            // Diagnosed here, not at build time: rate=0 would divide
            // every Poisson inter-arrival gap by zero.
            fatalIf(!(spec.serve.arrival.rate > 0.0) ||
                        !std::isfinite(spec.serve.arrival.rate),
                    "system spec: 'rate' must be a positive, finite "
                    "request rate (requests/second), got '", value,
                    "'");
            spec.serve_tuned = true;
        } else if (key == "batch_max") {
            spec.serve.batch_max = parseWindow(key, value);
            fatalIf(spec.serve.batch_max == 0,
                    "system spec: 'batch_max' must be at least 1");
            spec.serve_tuned = true;
        } else if (key == "budget_us") {
            spec.serve.budget_us = parseDouble(key, value);
            spec.serve_tuned = true;
        } else if (key == "refresh") {
            if (value == "static") {
                spec.serve.dynamic_refresh = false;
            } else {
                spec.serve.dynamic_refresh = true;
                spec.serve.policy = cache::policyFromName(value);
            }
            spec.serve_tuned = true;
        } else if (key == "burst_x") {
            spec.serve.arrival.burst_x = parseDouble(key, value);
            spec.serve_tuned = true;
        } else if (key == "burst_on_us") {
            spec.serve.arrival.burst_on_us = parseDouble(key, value);
            spec.serve_tuned = true;
        } else if (key == "burst_off_us") {
            spec.serve.arrival.burst_off_us = parseDouble(key, value);
            spec.serve_tuned = true;
        } else {
            fatal("system spec: unknown key '", key, "' in '", text,
                  "' (cache/policy/past/future/warm/bound/overlap/"
                  "shard/probe or serving keys arrival/rate/batch_max/"
                  "budget_us/refresh/burst_x/burst_on_us/"
                  "burst_off_us)");
        }
    }
    return spec;
}

SystemSpec
SystemSpec::withCache(const std::string &name, double fraction)
{
    SystemSpec spec;
    spec.name = name;
    spec.cache_fraction = fraction;
    return spec;
}

std::string
SystemSpec::summary() const
{
    std::ostringstream os;
    os << name;
    char separator = ':';
    const auto emit = [&](const std::string &key, const std::string &v) {
        os << separator << key << '=' << v;
        separator = ',';
    };
    if (cache_fraction.has_value()) {
        // Shortest round-trip representation ("0.02", not "0.020000").
        emit("cache", shortDouble(*cache_fraction));
    }
    if (scratchpipe_tuned) {
        emit("policy", cache::policyName(scratchpipe.policy));
        emit("past", std::to_string(scratchpipe.past_window));
        emit("future", std::to_string(scratchpipe.future_window));
        emit("warm", scratchpipe.warm_start ? "1" : "0");
        emit("bound", scratchpipe.enforce_capacity_bound ? "1" : "0");
        emit("overlap", scratchpipe.overlap_planning ? "1" : "0");
        emit("shard", std::to_string(scratchpipe.plan_shards));
        emit("probe", cache::probeModeName(scratchpipe.probe));
    }
    if (serve_tuned) {
        emit("arrival", data::arrivalKindName(serve.arrival.kind));
        emit("rate", shortDouble(serve.arrival.rate));
        emit("batch_max", std::to_string(serve.batch_max));
        emit("budget_us", shortDouble(serve.budget_us));
        emit("refresh", serve.dynamic_refresh
                            ? cache::policyName(serve.policy)
                            : "static");
        emit("burst_x", shortDouble(serve.arrival.burst_x));
        emit("burst_on_us", shortDouble(serve.arrival.burst_on_us));
        emit("burst_off_us", shortDouble(serve.arrival.burst_off_us));
    }
    return os.str();
}

void
SystemSpec::validate() const
{
    const Registry::Entry &entry = Registry::entry(name);
    if (cache_fraction.has_value()) {
        fatalIf(!entry.uses_cache_fraction, "system '", name,
                "' has no GPU cache; remove cache=", *cache_fraction,
                " (it was silently ignored by the legacy factory)");
        // Written as !(in range) so NaN is rejected too.
        fatalIf(!(*cache_fraction > 0.0 && *cache_fraction <= 1.0),
                "cache fraction must be in (0, 1], got ",
                *cache_fraction);
    }
    fatalIf(scratchpipe_tuned && !entry.uses_scratchpipe_options,
            "system '", name, "' has no scratchpad; "
            "policy/past/future/warm/bound/overlap/shard/probe do not "
            "apply");
    fatalIf(serve_tuned && !entry.uses_serve_options,
            "system '", name, "' does not serve requests; "
            "arrival/rate/batch_max/budget_us/refresh/burst_x/"
            "burst_on_us/burst_off_us do not apply");
    if (entry.uses_serve_options) {
        const std::string problem = serveOptions().validationError();
        fatalIf(!problem.empty(), "system '", name, "': ", problem);
    }
}

ScratchPipeOptions
SystemSpec::scratchPipeOptions(bool pipelined) const
{
    ScratchPipeOptions options = scratchpipe;
    options.pipelined = pipelined;
    if (cache_fraction.has_value())
        options.cache_fraction = *cache_fraction;
    return options;
}

ServeOptions
SystemSpec::serveOptions() const
{
    ServeOptions options = serve;
    if (cache_fraction.has_value())
        options.cache_fraction = *cache_fraction;
    return options;
}

} // namespace sp::sys
