#include "sys/spec.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "sys/registry.h"

namespace sp::sys
{

namespace
{

double
parseDouble(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    fatalIf(end == nullptr || *end != '\0' || value.empty(),
            "system spec: bad number '", value, "' for key '", key, "'");
    return parsed;
}

uint32_t
parseWindow(const std::string &key, const std::string &value)
{
    const double parsed = parseDouble(key, value);
    // Bounds-check before the cast: double -> uint32_t is UB outside
    // [0, 2^32).
    fatalIf(!(parsed >= 0.0 && parsed <= 4294967295.0) ||
                parsed != std::floor(parsed),
            "system spec: '", key, "' must be a small non-negative "
            "integer, got '", value, "'");
    return static_cast<uint32_t>(parsed);
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "1" || value == "true" || value == "yes")
        return true;
    if (value == "0" || value == "false" || value == "no")
        return false;
    fatal("system spec: '", key, "' expects 0/1, got '", value, "'");
}

} // namespace

SystemSpec
SystemSpec::parse(const std::string &text)
{
    SystemSpec spec;
    const size_t colon = text.find(':');
    spec.name = text.substr(0, colon);
    fatalIf(spec.name.empty(), "system spec: empty system name in '",
            text, "'");
    if (colon == std::string::npos)
        return spec;

    std::stringstream options(text.substr(colon + 1));
    std::string item;
    std::vector<std::string> seen;
    while (std::getline(options, item, ',')) {
        const size_t eq = item.find('=');
        fatalIf(eq == std::string::npos,
                "system spec: expected key=value, got '", item, "' in '",
                text, "'");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        // Reject duplicates instead of letting the last one win: a
        // typo like policy=lfu,policy=lru would otherwise silently
        // simulate a different system than the one on the screen.
        fatalIf(std::find(seen.begin(), seen.end(), key) != seen.end(),
                "system spec: duplicate key '", key, "' in '", text,
                "' (each option may appear once)");
        seen.push_back(key);
        if (key == "cache") {
            spec.cache_fraction = parseDouble(key, value);
        } else if (key == "policy") {
            spec.scratchpipe.policy = cache::policyFromName(value);
            spec.scratchpipe_tuned = true;
        } else if (key == "past") {
            spec.scratchpipe.past_window = parseWindow(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "future") {
            spec.scratchpipe.future_window = parseWindow(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "warm") {
            spec.scratchpipe.warm_start = parseBool(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "bound") {
            spec.scratchpipe.enforce_capacity_bound = parseBool(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "overlap") {
            spec.scratchpipe.overlap_planning = parseBool(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "shard") {
            spec.scratchpipe.plan_shards = parseWindow(key, value);
            spec.scratchpipe_tuned = true;
        } else if (key == "probe") {
            spec.scratchpipe.probe = cache::probeModeFromName(value);
            spec.scratchpipe_tuned = true;
        } else {
            fatal("system spec: unknown key '", key, "' in '", text,
                  "' (cache/policy/past/future/warm/bound/overlap/"
                  "shard/probe)");
        }
    }
    return spec;
}

SystemSpec
SystemSpec::withCache(const std::string &name, double fraction)
{
    SystemSpec spec;
    spec.name = name;
    spec.cache_fraction = fraction;
    return spec;
}

std::string
SystemSpec::summary() const
{
    std::ostringstream os;
    os << name;
    char separator = ':';
    const auto emit = [&](const std::string &key, const std::string &v) {
        os << separator << key << '=' << v;
        separator = ',';
    };
    if (cache_fraction.has_value()) {
        // Shortest round-trip representation ("0.02", not "0.020000").
        char buffer[32];
        const auto [end, ec] = std::to_chars(
            buffer, buffer + sizeof(buffer), *cache_fraction);
        emit("cache", ec == std::errc()
                          ? std::string(buffer, end)
                          : std::to_string(*cache_fraction));
    }
    if (scratchpipe_tuned) {
        emit("policy", cache::policyName(scratchpipe.policy));
        emit("past", std::to_string(scratchpipe.past_window));
        emit("future", std::to_string(scratchpipe.future_window));
        emit("warm", scratchpipe.warm_start ? "1" : "0");
        emit("bound", scratchpipe.enforce_capacity_bound ? "1" : "0");
        emit("overlap", scratchpipe.overlap_planning ? "1" : "0");
        emit("shard", std::to_string(scratchpipe.plan_shards));
        emit("probe", cache::probeModeName(scratchpipe.probe));
    }
    return os.str();
}

void
SystemSpec::validate() const
{
    const Registry::Entry &entry = Registry::entry(name);
    if (cache_fraction.has_value()) {
        fatalIf(!entry.uses_cache_fraction, "system '", name,
                "' has no GPU cache; remove cache=", *cache_fraction,
                " (it was silently ignored by the legacy factory)");
        // Written as !(in range) so NaN is rejected too.
        fatalIf(!(*cache_fraction > 0.0 && *cache_fraction <= 1.0),
                "cache fraction must be in (0, 1], got ",
                *cache_fraction);
    }
    fatalIf(scratchpipe_tuned && !entry.uses_scratchpipe_options,
            "system '", name, "' has no scratchpad; "
            "policy/past/future/warm/bound/overlap/shard/probe do not "
            "apply");
}

ScratchPipeOptions
SystemSpec::scratchPipeOptions(bool pipelined) const
{
    ScratchPipeOptions options = scratchpipe;
    options.pipelined = pipelined;
    if (cache_fraction.has_value())
        options.cache_fraction = *cache_fraction;
    return options;
}

} // namespace sp::sys
