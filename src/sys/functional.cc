#include "sys/functional.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/access_stats.h"
#include "emb/embedding_ops.h"

namespace sp::sys
{

namespace
{

double
meanOfQuarter(const std::vector<double> &values, bool final_quarter)
{
    if (values.empty())
        return 0.0;
    const size_t quarter = std::max<size_t>(1, values.size() / 4);
    const size_t begin = final_quarter ? values.size() - quarter : 0;
    double total = 0.0;
    for (size_t i = begin; i < begin + quarter; ++i)
        total += values[i];
    return total / static_cast<double>(quarter);
}

} // namespace

double
FunctionalRunResult::finalLoss() const
{
    return meanOfQuarter(losses, true);
}

double
FunctionalRunResult::finalAccuracy() const
{
    return meanOfQuarter(accuracies, true);
}

double
FunctionalRunResult::initialLoss() const
{
    return meanOfQuarter(losses, false);
}

namespace
{

/** Zero-initialised AdaGrad accumulator tables (same geometry). */
std::vector<emb::EmbeddingTable>
makeStateTables(const ModelConfig &config)
{
    std::vector<emb::EmbeddingTable> tables;
    if (config.optimizer != Optimizer::AdaGrad)
        return tables;
    tables.reserve(config.trace.num_tables);
    for (size_t t = 0; t < config.trace.num_tables; ++t) {
        tables.emplace_back(config.trace.rows_per_table,
                            config.embedding_dim,
                            emb::EmbeddingTable::Backing::Dense);
    }
    return tables;
}

} // namespace

std::vector<emb::EmbeddingTable>
makeDenseTables(const ModelConfig &config)
{
    std::vector<emb::EmbeddingTable> tables;
    tables.reserve(config.trace.num_tables);
    for (size_t t = 0; t < config.trace.num_tables; ++t) {
        tables.emplace_back(config.trace.rows_per_table,
                            config.embedding_dim,
                            emb::EmbeddingTable::Backing::Dense);
        tensor::Rng rng(config.model_seed * 1000003 + t);
        tables.back().initRandom(rng, 0.05f);
    }
    return tables;
}

double
functionalTrainStep(nn::DlrmModel &model,
                    std::vector<emb::RowAccessor *> &accessors,
                    const data::MiniBatch &batch,
                    const tensor::Matrix &dense,
                    const tensor::Matrix &labels, float lr,
                    double *accuracy,
                    std::vector<emb::RowAccessor *> *state_accessors,
                    float adagrad_eps)
{
    const size_t num_tables = batch.numTables();
    panicIf(accessors.size() != num_tables,
            "one accessor per table required");

    // Embedding forward: gather + reduce per table.
    std::vector<tensor::Matrix> reduced(num_tables);
    for (size_t t = 0; t < num_tables; ++t) {
        reduced[t].resize(batch.batch_size, accessors[t]->dim());
        emb::gatherReduce(*accessors[t], batch.ids(t),
                          batch.lookups_per_table, reduced[t]);
    }

    // DNN forward/backward.
    const auto forward = model.forward(dense, reduced, labels);
    std::vector<tensor::Matrix> emb_grads;
    model.backward(emb_grads);

    // Embedding backward: duplicate + coalesce + scatter per table.
    panicIf(state_accessors != nullptr &&
                state_accessors->size() != num_tables,
            "one state accessor per table required");
    for (size_t t = 0; t < num_tables; ++t) {
        const auto coalesced = emb::duplicateAndCoalesce(
            batch.ids(t), emb_grads[t], batch.lookups_per_table);
        if (state_accessors != nullptr) {
            emb::adagradScatter(*accessors[t], *(*state_accessors)[t],
                                coalesced, lr, adagrad_eps);
        } else {
            emb::sgdScatter(*accessors[t], coalesced, lr);
        }
    }
    model.step();

    if (accuracy != nullptr)
        *accuracy = forward.accuracy;
    return forward.loss;
}

// ---------------------------------------------------------------------
// Hybrid reference trainer
// ---------------------------------------------------------------------

FunctionalHybridTrainer::FunctionalHybridTrainer(const ModelConfig &config)
    : config_(config), tables_(makeDenseTables(config)),
      state_tables_(makeStateTables(config)),
      model_(config.dlrmConfig(), config.model_seed)
{
    config_.validate();
}

FunctionalRunResult
FunctionalHybridTrainer::train(const data::TraceDataset &dataset,
                               uint64_t iterations, uint64_t start_batch)
{
    fatalIf(start_batch + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");
    FunctionalRunResult result;
    std::vector<emb::RowAccessor *> accessors;
    for (auto &table : tables_)
        accessors.push_back(&table);
    std::vector<emb::RowAccessor *> state_accessors;
    for (auto &table : state_tables_)
        state_accessors.push_back(&table);
    auto *state = state_tables_.empty() ? nullptr : &state_accessors;

    for (uint64_t i = start_batch; i < start_batch + iterations; ++i) {
        double accuracy = 0.0;
        const double loss = functionalTrainStep(
            model_, accessors, dataset.batch(i), dataset.denseFeatures(i),
            dataset.labels(i), config_.learning_rate, &accuracy, state,
            config_.adagrad_eps);
        result.losses.push_back(loss);
        result.accuracies.push_back(accuracy);
    }
    return result;
}

// ---------------------------------------------------------------------
// Static-cache trainer
// ---------------------------------------------------------------------

namespace
{

/** Routes cached IDs to the cache storage, the rest to the table. */
class SplitAccessor : public emb::RowAccessor
{
  public:
    SplitAccessor(cache::StaticCache &cache, emb::EmbeddingTable &table)
        : cache_(cache), cache_accessor_(cache.accessor()), table_(table)
    {
    }

    float *
    row(uint64_t id) override
    {
        if (cache_.slotFor(id) != cache::HitMap::kNotFound)
            return cache_accessor_.row(id);
        return table_.row(id);
    }

    const float *
    row(uint64_t id) const override
    {
        if (cache_.slotFor(id) != cache::HitMap::kNotFound)
            return cache_accessor_.row(id);
        return table_.row(id);
    }

    size_t dim() const override { return table_.dim(); }

  private:
    cache::StaticCache &cache_;
    cache::StaticCache::Accessor cache_accessor_;
    emb::EmbeddingTable &table_;
};

} // namespace

FunctionalStaticCacheTrainer::FunctionalStaticCacheTrainer(
    const ModelConfig &config, double cache_fraction)
    : config_(config), cache_fraction_(cache_fraction),
      tables_(makeDenseTables(config)),
      model_(config.dlrmConfig(), config.model_seed)
{
    config_.validate();
    fatalIf(cache_fraction <= 0.0 || cache_fraction > 1.0,
            "cache_fraction must be in (0, 1], got ", cache_fraction);
    fatalIf(config.optimizer != Optimizer::Sgd,
            "the static-cache trainer supports SGD only; use the hybrid "
            "or ScratchPipe trainers for AdaGrad");
}

FunctionalRunResult
FunctionalStaticCacheTrainer::train(const data::TraceDataset &dataset,
                                    uint64_t iterations)
{
    fatalIf(iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");

    // Profile the training window to rank rows by access frequency --
    // the paper's "top-N most-frequently-accessed" cache contents.
    data::AccessStats stats(config_.trace.num_tables,
                            config_.trace.rows_per_table);
    for (uint64_t i = 0; i < iterations; ++i)
        stats.addBatch(dataset.batch(i));

    const uint64_t cached_rows = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               cache_fraction_ *
               static_cast<double>(config_.trace.rows_per_table)));

    std::vector<cache::StaticCache> caches;
    caches.reserve(config_.trace.num_tables);
    for (size_t t = 0; t < config_.trace.num_tables; ++t) {
        auto ranked = stats.rankedRows(t);
        ranked.resize(std::min<size_t>(ranked.size(), cached_rows));
        caches.emplace_back(ranked, config_.embedding_dim);
        caches.back().fillFrom(tables_[t]);
    }

    std::vector<SplitAccessor> split;
    split.reserve(config_.trace.num_tables);
    for (size_t t = 0; t < config_.trace.num_tables; ++t)
        split.emplace_back(caches[t], tables_[t]);
    std::vector<emb::RowAccessor *> accessors;
    for (auto &accessor : split)
        accessors.push_back(&accessor);

    FunctionalRunResult result;
    for (uint64_t i = 0; i < iterations; ++i) {
        const auto &batch = dataset.batch(i);
        for (size_t t = 0; t < batch.numTables(); ++t) {
            const auto query = caches[t].query(batch.ids(t));
            hits_ += query.hits;
            lookups_ += query.hits + query.misses;
        }
        double accuracy = 0.0;
        const double loss = functionalTrainStep(
            model_, accessors, batch, dataset.denseFeatures(i),
            dataset.labels(i), config_.learning_rate, &accuracy);
        result.losses.push_back(loss);
        result.accuracies.push_back(accuracy);
    }

    // Drain dirty cache contents so tables_ holds the full model.
    for (size_t t = 0; t < caches.size(); ++t)
        caches[t].flushTo(tables_[t]);
    return result;
}

double
FunctionalStaticCacheTrainer::hitRate() const
{
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
}

// ---------------------------------------------------------------------
// ScratchPipe pipelined trainer
// ---------------------------------------------------------------------

FunctionalScratchPipeTrainer::FunctionalScratchPipeTrainer(
    const ModelConfig &config, const Options &options)
    : config_(config), options_(options), tables_(makeDenseTables(config)),
      state_tables_(makeStateTables(config)),
      model_(config.dlrmConfig(), config.model_seed)
{
    config_.validate();
    fatalIf(options.cache_fraction <= 0.0 || options.cache_fraction > 1.0,
            "cache_fraction must be in (0, 1], got ",
            options.cache_fraction);

    const uint32_t pw = options_.pipelined ? options_.past_window : 0;
    const uint32_t fw = options_.pipelined ? options_.future_window : 0;
    uint64_t slots = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               options.cache_fraction *
               static_cast<double>(config_.trace.rows_per_table)));
    if (options.enforce_capacity_bound) {
        slots = std::max<uint64_t>(
            slots, core::ScratchPipeController::worstCaseSlots(
                       pw, fw, config_.trace.idsPerTable()));
    }
    slots = std::min<uint64_t>(slots, config_.trace.rows_per_table);

    core::ControllerConfig cc;
    cc.num_slots = static_cast<uint32_t>(slots);
    cc.dim = config_.embedding_dim;
    cc.past_window = pw;
    cc.future_window = fw;
    cc.policy = options.policy;
    cc.backing = cache::SlotArray::Backing::Dense;
    cc.plan_shards =
        options.plan_shards == 0
            ? static_cast<uint32_t>(common::ThreadPool::global().size())
            : options.plan_shards;
    cc.probe = options.probe;
    controllers_.reserve(config_.trace.num_tables);
    for (size_t t = 0; t < config_.trace.num_tables; ++t) {
        cc.policy_seed = 0x5eed + t;
        controllers_.emplace_back(cc);
        if (config_.optimizer == Optimizer::AdaGrad) {
            // Optimizer state is slot-aligned with the scratchpad: the
            // accumulator of a resident row lives at the row's slot.
            state_storage_.emplace_back(cc.num_slots, cc.dim,
                                        cache::SlotArray::Backing::Dense);
        }
    }
}

void
FunctionalScratchPipeTrainer::planBatch(const data::TraceDataset &dataset,
                                        uint64_t index)
{
    InFlight staged;
    staged.batch_index = index;
    staged.per_table.resize(config_.trace.num_tables);
    const auto &mini = dataset.batch(index);

    // One controller per table: the [Plan] stages are independent and
    // fan out across the shared pool (table t writes per_table[t]
    // only).
    const uint32_t fw = options_.pipelined ? options_.future_window : 0;
    common::parallelFor(
        config_.trace.num_tables,
        [this, &staged, &dataset, &mini, index, fw](size_t t) {
            std::vector<std::span<const uint64_t>> futures;
            futures.reserve(fw);
            for (uint32_t d = 1; d <= fw; ++d) {
                const auto *next = dataset.lookAhead(index, d);
                if (next == nullptr)
                    break;
                futures.emplace_back(next->ids(t));
            }
            staged.per_table[t].plan =
                controllers_[t].plan(mini.ids(t), futures);
        });
    inflight_.emplace(index, std::move(staged));
}

void
FunctionalScratchPipeTrainer::collectBatch(uint64_t index)
{
    auto it = inflight_.find(index);
    panicIf(it == inflight_.end(), "collect of unplanned batch ", index);
    const size_t dim = config_.embedding_dim;

    for (size_t t = 0; t < config_.trace.num_tables; ++t) {
        auto &staged = it->second.per_table[t];
        const auto &plan = staged.plan;

        // CPU side: gather the missed rows into the staging buffer.
        const bool adagrad = config_.optimizer == Optimizer::AdaGrad;
        staged.fill_values.resize(plan.fills.size(), dim);
        if (adagrad)
            staged.fill_state.resize(plan.fills.size(), dim);
        for (size_t f = 0; f < plan.fills.size(); ++f) {
            std::memcpy(staged.fill_values.row(f),
                        tables_[t].row(plan.fills[f].id),
                        dim * sizeof(float));
            if (adagrad) {
                std::memcpy(staged.fill_state.row(f),
                            state_tables_[t].row(plan.fills[f].id),
                            dim * sizeof(float));
            }
            if (auditing_)
                auditor_.collectReadsCpuRow(t, plan.fills[f].id);
        }

        // GPU side: read the victims' dirty values out of Storage.
        staged.evict_values.resize(plan.evictions.size(), dim);
        if (adagrad)
            staged.evict_state.resize(plan.evictions.size(), dim);
        for (size_t e = 0; e < plan.evictions.size(); ++e) {
            std::memcpy(
                staged.evict_values.row(e),
                controllers_[t].storage().slot(plan.evictions[e].slot),
                dim * sizeof(float));
            if (adagrad) {
                std::memcpy(staged.evict_state.row(e),
                            state_storage_[t].slot(plan.evictions[e].slot),
                            dim * sizeof(float));
            }
            if (auditing_)
                auditor_.collectReadsVictimSlot(t, plan.evictions[e].slot);
        }
    }
}

void
FunctionalScratchPipeTrainer::insertBatch(uint64_t index)
{
    auto it = inflight_.find(index);
    panicIf(it == inflight_.end(), "insert of uncollected batch ", index);
    const size_t dim = config_.embedding_dim;

    for (size_t t = 0; t < config_.trace.num_tables; ++t) {
        auto &staged = it->second.per_table[t];
        const auto &plan = staged.plan;

        // Fills land in Storage (values + optimizer state).
        const bool adagrad = config_.optimizer == Optimizer::AdaGrad;
        for (size_t f = 0; f < plan.fills.size(); ++f) {
            std::memcpy(controllers_[t].storage().slot(plan.fills[f].slot),
                        staged.fill_values.row(f), dim * sizeof(float));
            if (adagrad) {
                std::memcpy(state_storage_[t].slot(plan.fills[f].slot),
                            staged.fill_state.row(f),
                            dim * sizeof(float));
            }
            if (auditing_)
                auditor_.insertWritesSlot(t, plan.fills[f].slot);
        }
        // Evicted (dirty) rows return to the CPU tables.
        for (size_t e = 0; e < plan.evictions.size(); ++e) {
            std::memcpy(tables_[t].row(plan.evictions[e].id),
                        staged.evict_values.row(e), dim * sizeof(float));
            if (adagrad) {
                std::memcpy(state_tables_[t].row(plan.evictions[e].id),
                            staged.evict_state.row(e),
                            dim * sizeof(float));
            }
            if (auditing_)
                auditor_.insertWritesCpuRow(t, plan.evictions[e].id);
        }
    }
}

namespace
{

/** Resolves resident IDs to their slot-aligned optimizer state. */
class SlotStateAccessor : public emb::RowAccessor
{
  public:
    SlotStateAccessor(core::ScratchPipeController &controller,
                      cache::SlotArray &storage)
        : controller_(controller), storage_(storage)
    {
    }
    float *
    row(uint64_t id) override
    {
        return storage_.slot(controller_.slotOf(id));
    }
    const float *
    row(uint64_t id) const override
    {
        return storage_.slot(controller_.slotOf(id));
    }
    size_t dim() const override { return storage_.dim(); }

  private:
    core::ScratchPipeController &controller_;
    cache::SlotArray &storage_;
};

} // namespace

void
FunctionalScratchPipeTrainer::trainBatch(const data::TraceDataset &dataset,
                                         uint64_t index,
                                         FunctionalRunResult &result)
{
    const auto &mini = dataset.batch(index);

    std::vector<core::ScratchPipeController::Accessor> table_accessors;
    table_accessors.reserve(controllers_.size());
    for (auto &controller : controllers_)
        table_accessors.push_back(controller.accessor());
    std::vector<emb::RowAccessor *> accessors;
    for (auto &accessor : table_accessors)
        accessors.push_back(&accessor);

    const bool adagrad = config_.optimizer == Optimizer::AdaGrad;
    std::vector<SlotStateAccessor> state_slot_accessors;
    std::vector<emb::RowAccessor *> state_accessors;
    if (adagrad) {
        state_slot_accessors.reserve(controllers_.size());
        for (size_t t = 0; t < controllers_.size(); ++t)
            state_slot_accessors.emplace_back(controllers_[t],
                                              state_storage_[t]);
        for (auto &accessor : state_slot_accessors)
            state_accessors.push_back(&accessor);
    }

    if (auditing_) {
        for (size_t t = 0; t < mini.numTables(); ++t) {
            for (uint64_t id : emb::uniqueIds(mini.ids(t)))
                auditor_.trainWritesSlot(t, controllers_[t].slotOf(id));
        }
    }

    double accuracy = 0.0;
    const double loss = functionalTrainStep(
        model_, accessors, mini, dataset.denseFeatures(index),
        dataset.labels(index), config_.learning_rate, &accuracy,
        adagrad ? &state_accessors : nullptr, config_.adagrad_eps);
    result.losses.push_back(loss);
    result.accuracies.push_back(accuracy);

    // The batch has fully retired; its staging buffers are dead.
    inflight_.erase(index);
}

FunctionalRunResult
FunctionalScratchPipeTrainer::train(const data::TraceDataset &dataset,
                                    uint64_t iterations)
{
    fatalIf(iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");
    FunctionalRunResult result;
    auditing_ = options_.audit && options_.pipelined;

    if (options_.pipelined) {
        // Stage schedule: batch b is planned at cycle b, collected at
        // b+1, exchanged at b+2, inserted at b+3, trained at b+4.
        // Within a cycle the oldest batch executes first, matching the
        // stage-ordered completion of the real pipeline.
        const uint64_t train_offset = 4;
        for (uint64_t cycle = 0; cycle < iterations + train_offset;
             ++cycle) {
            if (auditing_)
                auditor_.beginCycle(cycle);
            if (cycle >= train_offset && cycle - train_offset < iterations)
                trainBatch(dataset, cycle - train_offset, result);
            if (cycle >= 3 && cycle - 3 < iterations)
                insertBatch(cycle - 3);
            // [Exchange] at cycle-2 moves staged buffers across PCIe;
            // functionally the staging buffers already carry the data.
            if (cycle >= 1 && cycle - 1 < iterations)
                collectBatch(cycle - 1);
            if (cycle < iterations)
                planBatch(dataset, cycle);
            if (auditing_)
                auditor_.endCycle();
        }
    } else {
        // Straw-man: the same stages, one batch at a time.
        for (uint64_t i = 0; i < iterations; ++i) {
            planBatch(dataset, i);
            collectBatch(i);
            insertBatch(i);
            trainBatch(dataset, i, result);
        }
    }

    // Drain the scratchpad so tables_ is the complete trained model,
    // optimizer state included.
    for (size_t t = 0; t < controllers_.size(); ++t) {
        controllers_[t].flushTo(tables_[t]);
        if (config_.optimizer == Optimizer::AdaGrad) {
            controllers_[t].forEachResident(
                [this, t](uint64_t key, uint32_t slot) {
                    std::memcpy(state_tables_[t].row(key),
                                state_storage_[t].slot(slot),
                                state_storage_[t].rowBytes());
                });
        }
    }
    return result;
}

double
FunctionalScratchPipeTrainer::hitRate() const
{
    uint64_t hits = 0, total = 0;
    for (const auto &controller : controllers_) {
        hits += controller.stats().hits;
        total += controller.stats().hits + controller.stats().misses;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

core::ControllerStats
FunctionalScratchPipeTrainer::aggregateStats() const
{
    core::ControllerStats total;
    for (const auto &controller : controllers_) {
        const auto &s = controller.stats();
        total.plans += s.plans;
        total.hits += s.hits;
        total.misses += s.misses;
        total.fills += s.fills;
        total.evictions += s.evictions;
    }
    return total;
}

} // namespace sp::sys
