/**
 * @file
 * Shared per-table [Plan] fan-out for the timing systems.
 *
 * ScratchPipeSystem and ScratchPipeMultiGpuSystem run one controller
 * per table over the same batch loop; the per-table plan calls are
 * independent, so they fan out across the worker pool. This helper
 * owns the reusable scratch (future-window span lists, per-table
 * outcomes) and the fan-out itself so the two systems cannot diverge.
 * Table t only writes slot t, keeping results bit-identical to a
 * serial table loop.
 *
 * runAsync() is the engine's two-deep software pipeline: it launches
 * batch i+1's fan-out and returns immediately, so the caller reduces
 * batch i's outcomes while i+1's plans are already on the pool.
 * Outcome buffers ping-pong between two slots -- the batch being
 * accounted stays readable while the next one writes -- and the
 * controller-per-table ordering constraint is preserved by the only
 * legal call sequence: wait() batch i before launching batch i+1
 * (controllers are stateful; plans of one table must stay in batch
 * order).
 */

#ifndef SP_SYS_PLAN_FANOUT_H
#define SP_SYS_PLAN_FANOUT_H

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/controller.h"
#include "data/dataset.h"

namespace sp::sys
{

/** One table's plan outcome for a single batch. */
struct TablePlanOutcome
{
    uint64_t fills = 0;
    uint64_t evicts = 0;
    uint64_t hits = 0;
    uint64_t ids = 0;
};

/** Pool-parallel per-table planning with reusable scratch. */
class PlanFanout
{
  public:
    PlanFanout(size_t num_tables, uint32_t future_window)
        : future_window_(future_window), future_scratch_(num_tables)
    {
        for (auto &buffer : outcomes_)
            buffer.resize(num_tables);
        for (auto &scratch : future_scratch_)
            scratch.reserve(future_window);
    }

    /**
     * Handle to one launched batch. wait() is the batch's plan
     * barrier: it blocks until every table's plan has retired (the
     * caller helps drain, so completion never depends on pool
     * capacity) and returns the batch's outcomes. The returned
     * reference stays valid until the next-but-one launch reuses the
     * buffer.
     */
    class Pending
    {
      public:
        Pending() = default;

        const std::vector<TablePlanOutcome> &
        wait()
        {
            panicIf(outcomes_ == nullptr,
                    "wait() on a Pending that was never launched");
            done_.wait();
            return *outcomes_;
        }

      private:
        friend class PlanFanout;
        common::ThreadPool::Completion done_;
        const std::vector<TablePlanOutcome> *outcomes_ = nullptr;
    };

    /**
     * Launch batch `index`'s per-table plans on the pool and return
     * without blocking. The previous launch must have been wait()ed
     * first -- table t's plan for batch i+1 may only start once its
     * plan for batch i retired.
     */
    Pending
    runAsync(std::vector<core::ScratchPipeController> &controllers,
             const data::TraceDataset &dataset, uint64_t index)
    {
        std::vector<TablePlanOutcome> &out = outcomes_[next_buffer_];
        next_buffer_ ^= 1;
        Pending pending;
        pending.outcomes_ = &out;
        pending.done_ = common::ThreadPool::global().parallelForAsync(
            controllers.size(),
            [this, &controllers, &dataset, &out, index](size_t t) {
                const auto &mini = dataset.batch(index);
                // Future window from the dataset's look-ahead
                // capability.
                auto &futures = future_scratch_[t];
                futures.clear();
                for (uint32_t d = 1; d <= future_window_; ++d) {
                    const auto *next = dataset.lookAhead(index, d);
                    if (next == nullptr)
                        break;
                    futures.emplace_back(next->ids(t));
                }
                const auto &plan =
                    controllers[t].plan(mini.ids(t), futures);
                out[t] = {plan.fills.size(), plan.evictions.size(),
                          plan.hits, plan.hits + plan.misses};
            });
        return pending;
    }

    /** Blocking form: plan batch `index` on every controller and
     *  return its outcomes. */
    const std::vector<TablePlanOutcome> &
    run(std::vector<core::ScratchPipeController> &controllers,
        const data::TraceDataset &dataset, uint64_t index)
    {
        return runAsync(controllers, dataset, index).wait();
    }

    /**
     * Drive batches 0..num_batches-1 through the fan-out, calling
     * consume(i, outcomes) for each batch in order. With `overlap`
     * the two-deep pipeline runs: batch i+1 launches right after
     * batch i's barrier, before consume(i) -- so consume must not
     * touch the controllers. Without it, planning and consuming
     * strictly alternate. consume sees identical outcomes in
     * identical order either way; this member is the single home of
     * the launch-after-wait ordering every caller depends on.
     */
    template <typename ConsumeFn>
    void
    forEachBatch(std::vector<core::ScratchPipeController> &controllers,
                 const data::TraceDataset &dataset, uint64_t num_batches,
                 bool overlap, ConsumeFn &&consume)
    {
        if (overlap && num_batches > 0) {
            Pending pending = runAsync(controllers, dataset, 0);
            for (uint64_t i = 0; i < num_batches; ++i) {
                const auto &outcomes = pending.wait();
                if (i + 1 < num_batches)
                    pending = runAsync(controllers, dataset, i + 1);
                consume(i, outcomes);
            }
        } else {
            for (uint64_t i = 0; i < num_batches; ++i)
                consume(i, run(controllers, dataset, i));
        }
    }

  private:
    uint32_t future_window_;
    std::array<std::vector<TablePlanOutcome>, 2> outcomes_;
    size_t next_buffer_ = 0;
    std::vector<std::vector<std::span<const uint64_t>>> future_scratch_;
};

} // namespace sp::sys

#endif // SP_SYS_PLAN_FANOUT_H
