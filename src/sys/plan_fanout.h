/**
 * @file
 * Shared per-table [Plan] fan-out for the timing systems.
 *
 * ScratchPipeSystem and ScratchPipeMultiGpuSystem run one controller
 * per table over the same batch loop; the per-table plan calls are
 * independent, so they fan out across the worker pool. This helper
 * owns the reusable scratch (future-window span lists, per-table
 * outcomes) and the fan-out itself so the two systems cannot diverge.
 * Table t only writes slot t, keeping results bit-identical to a
 * serial table loop.
 */

#ifndef SP_SYS_PLAN_FANOUT_H
#define SP_SYS_PLAN_FANOUT_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/controller.h"
#include "data/dataset.h"

namespace sp::sys
{

/** One table's plan outcome for a single batch. */
struct TablePlanOutcome
{
    uint64_t fills = 0;
    uint64_t evicts = 0;
    uint64_t hits = 0;
    uint64_t ids = 0;
};

/** Pool-parallel per-table planning with reusable scratch. */
class PlanFanout
{
  public:
    PlanFanout(size_t num_tables, uint32_t future_window)
        : future_window_(future_window), outcomes_(num_tables),
          future_scratch_(num_tables)
    {
        for (auto &scratch : future_scratch_)
            scratch.reserve(future_window);
    }

    /** Plan batch `index` on every controller, in parallel. */
    void
    run(std::vector<core::ScratchPipeController> &controllers,
        const data::TraceDataset &dataset, uint64_t index)
    {
        const auto &mini = dataset.batch(index);
        common::parallelFor(controllers.size(), [&, index](size_t t) {
            // Future window from the dataset's look-ahead capability.
            auto &futures = future_scratch_[t];
            futures.clear();
            for (uint32_t d = 1; d <= future_window_; ++d) {
                const auto *next = dataset.lookAhead(index, d);
                if (next == nullptr)
                    break;
                futures.emplace_back(next->table_ids[t]);
            }
            const auto &plan =
                controllers[t].plan(mini.table_ids[t], futures);
            outcomes_[t] = {plan.fills.size(), plan.evictions.size(),
                            plan.hits, plan.hits + plan.misses};
        });
    }

    const std::vector<TablePlanOutcome> &outcomes() const
    {
        return outcomes_;
    }

  private:
    uint32_t future_window_;
    std::vector<TablePlanOutcome> outcomes_;
    std::vector<std::vector<std::span<const uint32_t>>> future_scratch_;
};

} // namespace sp::sys

#endif // SP_SYS_PLAN_FANOUT_H
