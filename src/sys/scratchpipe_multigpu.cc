#include "sys/scratchpipe_multigpu.h"

#include <algorithm>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/controller.h"
#include "emb/traffic.h"
#include "nn/dlrm.h"
#include "nn/flops.h"
#include "sys/plan_fanout.h"

namespace sp::sys
{

ScratchPipeMultiGpuSystem::ScratchPipeMultiGpuSystem(
    const ModelConfig &model, const sim::HardwareConfig &hardware,
    const ScratchPipeOptions &options)
    : model_(model), latency_(hardware), options_(options)
{
    model_.validate();
    fatalIf(!options.pipelined,
            "the multi-GPU extension models the pipelined design only");
    fatalIf(options.cache_fraction <= 0.0 || options.cache_fraction > 1.0,
            "cache_fraction must be in (0, 1], got ",
            options.cache_fraction);

    uint64_t slots = std::max<uint64_t>(
        1, static_cast<uint64_t>(options.cache_fraction *
                                 model_.trace.rows_per_table));
    if (options.enforce_capacity_bound) {
        slots = std::max<uint64_t>(
            slots, core::ScratchPipeController::worstCaseSlots(
                       options.past_window, options.future_window,
                       model_.trace.idsPerTable()));
    }
    slots = std::min<uint64_t>(slots, model_.trace.rows_per_table);
    slots_per_table_ = static_cast<uint32_t>(slots);
}

RunResult
ScratchPipeMultiGpuSystem::simulate(const data::TraceDataset &dataset,
                                    const BatchStats &stats,
                                    uint64_t iterations,
                                    uint64_t warmup) const
{
    fatalIf(iterations == 0, "need at least one iteration");
    fatalIf(warmup + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");

    const auto &hw = latency_.config();
    const auto &trace = model_.trace;
    const uint64_t batch = trace.batch_size;
    const size_t rb = model_.rowBytes();
    const uint64_t n_per_table = trace.idsPerTable();
    const int gpus = hw.multi_gpu_count;
    const size_t tables_per_gpu =
        (trace.num_tables + gpus - 1) / static_cast<size_t>(gpus);
    using CpuPath = sim::LatencyModel::CpuPath;

    // One controller per table, as in the single-GPU design; the
    // assignment to GPUs only affects which resources are charged.
    core::ControllerConfig cc;
    cc.num_slots = slots_per_table_;
    cc.dim = model_.embedding_dim;
    cc.past_window = options_.past_window;
    cc.future_window = options_.future_window;
    cc.policy = options_.policy;
    cc.backing = cache::SlotArray::Backing::Phantom;
    cc.warm_start = options_.warm_start;
    // shard=0 means one shard per pool thread (perf knob only: any
    // width plans bit-identically).
    cc.plan_shards =
        options_.plan_shards == 0
            ? static_cast<uint32_t>(common::ThreadPool::global().size())
            : options_.plan_shards;
    cc.probe = options_.probe;
    std::vector<core::ScratchPipeController> controllers;
    controllers.reserve(trace.num_tables);
    for (size_t t = 0; t < trace.num_tables; ++t) {
        cc.policy_seed = 0x5eed + t;
        controllers.emplace_back(cc);
    }

    const char *stage_names[6] = {"Load",     "Plan",   "Collect",
                                  "Exchange", "Insert", "Train"};
    std::vector<sim::StageDemand> total(6);
    for (int s = 0; s < 6; ++s) {
        total[s].name = stage_names[s];
        total[s].overhead = hw.pipeline_stage_overhead;
    }
    total[5].overhead = hw.multi_gpu_iteration_overhead;

    const nn::DlrmConfig dlrm = model_.dlrmConfig();
    const nn::DlrmModel probe(dlrm, 1);
    const double param_bytes =
        static_cast<double>(probe.parameterCount()) * sizeof(float);
    const double flops = nn::dlrmIterationFlops(dlrm, batch) / gpus;

    uint64_t total_hits = 0, total_ids = 0;

    // Per-table [Plan] fan-out across the shared pool (one controller
    // per table, all independent).
    PlanFanout fanout(trace.num_tables, cc.future_window);

    // Pure reduction of one measured batch's outcomes into the stage
    // accumulators; overlaps the next batch's planning when the
    // two-deep pipeline is on.
    const auto account = [&](uint64_t i,
                             const std::vector<TablePlanOutcome>
                                 &plan_outcomes) {
        // Per-GPU fill/evict volume: the busiest GPU binds the
        // GPU-side stages, the *sum* binds shared CPU DRAM.
        uint64_t fills_total = 0, evicts_total = 0;
        uint64_t fills_max_gpu = 0, evicts_max_gpu = 0;
        for (int g = 0; g < gpus; ++g) {
            uint64_t fills_gpu = 0, evicts_gpu = 0;
            for (size_t t = g; t < trace.num_tables;
                 t += static_cast<size_t>(gpus)) {
                fills_gpu += plan_outcomes[t].fills;
                evicts_gpu += plan_outcomes[t].evicts;
                total_hits += plan_outcomes[t].hits;
                total_ids += plan_outcomes[t].ids;
            }
            fills_total += fills_gpu;
            evicts_total += evicts_gpu;
            fills_max_gpu = std::max(fills_max_gpu, fills_gpu);
            evicts_max_gpu = std::max(evicts_max_gpu, evicts_gpu);
        }

        const double n_total = static_cast<double>(trace.idsPerBatch());
        // [Load]
        {
            emb::Traffic t;
            t.dense_read_bytes = n_total * sizeof(uint64_t);
            t.dense_write_bytes = n_total * sizeof(uint64_t);
            total[0].demand += latency_.cpuDemand(t, CpuPath::Runtime);
        }
        // [Plan]: per-GPU ID shard over its own PCIe + probes in its
        // own HBM; the busiest GPU binds.
        {
            const double ids_per_gpu =
                static_cast<double>(tables_per_gpu) * n_per_table *
                sizeof(uint64_t);
            total[1].demand += latency_.pcieH2DDemand(ids_per_gpu);
            emb::Traffic t;
            t.dense_read_bytes =
                static_cast<double>(tables_per_gpu) * n_per_table * 16.0;
            t.dense_read_bytes += static_cast<double>(slots_per_table_) *
                                  tables_per_gpu * sizeof(uint16_t);
            t.dense_write_bytes += static_cast<double>(slots_per_table_) *
                                   tables_per_gpu * sizeof(uint16_t);
            total[1].demand += latency_.gpuMemDemand(t);
        }
        // [Collect]: CPU DRAM serves the *sum* of all GPUs' fills.
        {
            emb::Traffic cpu = emb::gatherTraffic(fills_total, rb);
            total[2].demand += latency_.cpuDemand(cpu, CpuPath::Runtime);
            emb::Traffic gpu;
            gpu.sparse_read_bytes =
                static_cast<double>(evicts_max_gpu) * rb;
            gpu.dense_write_bytes =
                static_cast<double>(evicts_max_gpu) * rb;
            total[2].demand += latency_.gpuMemDemand(gpu);
        }
        // [Exchange]: each GPU has its own PCIe lanes; busiest binds.
        {
            total[3].demand += latency_.pcieH2DDemand(
                static_cast<double>(fills_max_gpu) * rb);
            total[3].demand += latency_.pcieD2HDemand(
                static_cast<double>(evicts_max_gpu) * rb);
        }
        // [Insert]: per-GPU fills into HBM; summed write-backs on CPU.
        {
            emb::Traffic gpu;
            gpu.dense_read_bytes = static_cast<double>(fills_max_gpu) * rb;
            gpu.sparse_write_bytes =
                static_cast<double>(fills_max_gpu) * rb;
            total[4].demand += latency_.gpuMemDemand(gpu);
            emb::Traffic cpu;
            cpu.dense_read_bytes = static_cast<double>(evicts_total) * rb;
            cpu.sparse_write_bytes =
                static_cast<double>(evicts_total) * rb;
            total[4].demand += latency_.cpuDemand(cpu, CpuPath::Runtime);
        }
        // [Train]: per-GPU embedding work + all-to-all + data-parallel
        // MLPs + gradient all-reduce.
        {
            emb::Traffic gpu;
            for (size_t t = 0; t < tables_per_gpu && t < trace.num_tables;
                 ++t) {
                gpu += emb::embeddingForwardTraffic(n_per_table, batch, rb);
                gpu += emb::embeddingBackwardTraffic(
                    n_per_table, batch, stats.unique(i, t), rb);
            }
            total[5].demand += latency_.gpuMemDemand(gpu);
            total[5].demand += latency_.gpuComputeDemand(flops);
            const double a2a_bytes = static_cast<double>(batch) *
                                     tables_per_gpu * rb *
                                     (gpus - 1.0) / gpus;
            total[5].demand += latency_.nvlinkDemand(2.0 * a2a_bytes);
            total[5].demand += latency_.nvlinkDemand(
                2.0 * param_bytes * (gpus - 1.0) / gpus);
        }
    };

    fanout.forEachBatch(
        controllers, dataset, warmup + iterations,
        options_.overlap_planning,
        [&](uint64_t i, const std::vector<TablePlanOutcome> &outcomes) {
            if (i >= warmup)
                account(i, outcomes);
        });

    const double inv = 1.0 / static_cast<double>(iterations);
    for (auto &stage : total) {
        for (auto &s : stage.demand.seconds)
            s *= inv;
    }

    const auto solution = sim::solvePipeline(total);
    RunResult result;
    result.system_name = "ScratchPipe multi-GPU";
    result.iterations = iterations;
    result.seconds_per_iteration = solution.cycle_time;
    result.bottleneck = solution.bottleneck;
    for (size_t s = 0; s < total.size(); ++s)
        result.breakdown.add(total[s].name, solution.stage_latencies[s]);

    double cpu_busy = 0.0, gpu_busy = 0.0;
    for (const auto &stage : total) {
        cpu_busy += stage.demand[sim::Resource::CpuDram];
        gpu_busy += stage.demand[sim::Resource::GpuHbm] +
                    stage.demand[sim::Resource::GpuCompute] +
                    stage.demand[sim::Resource::PcieH2D] +
                    stage.demand[sim::Resource::PcieD2H] +
                    stage.demand[sim::Resource::NvLink];
    }
    result.busy.iteration_seconds = result.seconds_per_iteration;
    result.busy.cpu_busy_seconds = cpu_busy;
    result.busy.gpu_busy_seconds = gpu_busy;

    result.hit_rate = total_ids == 0
                          ? 0.0
                          : static_cast<double>(total_hits) /
                                static_cast<double>(total_ids);
    double gpu_bytes = 0.0;
    for (const auto &controller : controllers) {
        gpu_bytes +=
            static_cast<double>(controller.storage().storageBytes());
        gpu_bytes += static_cast<double>(controller.metadataBytes());
    }
    result.gpu_bytes = gpu_bytes;
    return result;
}

} // namespace sp::sys
