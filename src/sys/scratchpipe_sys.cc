#include "sys/scratchpipe_sys.h"

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/controller.h"
#include "emb/traffic.h"
#include "nn/flops.h"
#include "sys/plan_fanout.h"
#include "sys/registry.h"

namespace sp::sys
{

ScratchPipeSystem::ScratchPipeSystem(const ModelConfig &model,
                                     const sim::HardwareConfig &hardware,
                                     const ScratchPipeOptions &options)
    : model_(model), latency_(hardware), options_(options)
{
    model_.validate();
    // Written as !(in range) so NaN is rejected too.
    fatalIf(!(options.cache_fraction > 0.0 &&
              options.cache_fraction <= 1.0),
            "cache_fraction must be in (0, 1], got ",
            options.cache_fraction);

    const uint64_t nominal = static_cast<uint64_t>(
        options.cache_fraction *
        static_cast<double>(model_.trace.rows_per_table));
    uint64_t slots = std::max<uint64_t>(nominal, 1);
    if (options.enforce_capacity_bound) {
        const uint32_t pw = options.pipelined ? options.past_window : 0;
        const uint32_t fw = options.pipelined ? options.future_window : 0;
        slots = std::max<uint64_t>(
            slots, core::ScratchPipeController::worstCaseSlots(
                       pw, fw, model_.trace.idsPerTable()));
    }
    slots = std::min<uint64_t>(slots, model_.trace.rows_per_table);
    slots_per_table_ = static_cast<uint32_t>(slots);
}

RunResult
ScratchPipeSystem::simulate(const data::TraceDataset &dataset,
                            const BatchStats &stats, uint64_t iterations,
                            uint64_t warmup) const
{
    fatalIf(iterations == 0, "need at least one iteration");
    fatalIf(warmup + iterations > dataset.numBatches(),
            "dataset has only ", dataset.numBatches(), " batches");

    const auto &hw = latency_.config();
    const auto &trace = model_.trace;
    const uint64_t batch = trace.batch_size;
    const size_t rb = model_.rowBytes();
    // Per-row optimizer state (AdaGrad) migrates with fills,
    // write-backs and scatter updates -- but not with gathers.
    const size_t rb_state = rb + model_.optimizerStateBytesPerRow();
    const double n_total = static_cast<double>(trace.idsPerBatch());
    const uint64_t n_per_table = trace.idsPerTable();
    using CpuPath = sim::LatencyModel::CpuPath;

    // Real controllers (phantom storage) drive hit/miss behaviour.
    core::ControllerConfig cc;
    cc.num_slots = slots_per_table_;
    cc.dim = model_.embedding_dim;
    cc.past_window = options_.pipelined ? options_.past_window : 0;
    cc.future_window = options_.pipelined ? options_.future_window : 0;
    cc.policy = options_.policy;
    cc.backing = cache::SlotArray::Backing::Phantom;
    cc.warm_start = options_.warm_start;
    // shard=0 means one shard per pool thread (perf knob only: any
    // width plans bit-identically).
    cc.plan_shards =
        options_.plan_shards == 0
            ? static_cast<uint32_t>(common::ThreadPool::global().size())
            : options_.plan_shards;
    cc.probe = options_.probe;
    std::vector<core::ScratchPipeController> controllers;
    controllers.reserve(trace.num_tables);
    for (size_t t = 0; t < trace.num_tables; ++t) {
        cc.policy_seed = 0x5eed + t;
        controllers.emplace_back(cc);
    }

    // Stage demand accumulators, averaged after the loop.
    const char *stage_names[6] = {"Load",     "Plan",   "Collect",
                                  "Exchange", "Insert", "Train"};
    std::vector<sim::StageDemand> total(6);
    for (int s = 0; s < 6; ++s) {
        total[s].name = stage_names[s];
        total[s].overhead = hw.pipeline_stage_overhead;
    }
    // Train carries the framework's per-iteration overhead instead of
    // a bare pipeline sync.
    total[5].overhead = hw.gpu_iteration_overhead;

    uint64_t total_hits = 0, total_ids = 0;
    const double flops = nn::dlrmIterationFlops(model_.dlrmConfig(), batch);

    // Tables are independent (one controller each), so their [Plan]
    // stages fan out across the shared pool.
    PlanFanout fanout(trace.num_tables, cc.future_window);

    // Demand/traffic accounting for one measured batch: a pure
    // reduction over that batch's per-table outcomes into the stage
    // accumulators. Nothing here touches the controllers, which is
    // what lets the next batch's plans overlap it.
    const auto account = [&](uint64_t i,
                             const std::vector<TablePlanOutcome>
                                 &outcomes) {
        uint64_t fills = 0, evicts = 0;
        for (const auto &outcome : outcomes) {
            fills += outcome.fills;
            evicts += outcome.evicts;
            total_hits += outcome.hits;
            total_ids += outcome.ids;
        }

        const double fill_bytes = static_cast<double>(fills) * rb_state;
        const double evict_bytes = static_cast<double>(evicts) * rb_state;

        // [Load]: stream the next batch's IDs through host memory.
        {
            emb::Traffic t;
            t.dense_read_bytes = n_total * sizeof(uint64_t);
            t.dense_write_bytes = n_total * sizeof(uint64_t);
            total[0].demand += latency_.cpuDemand(t, CpuPath::Runtime);
        }
        // [Plan]: IDs H2D, Hit-Map probes and mask maintenance on GPU.
        {
            total[1].demand +=
                latency_.pcieH2DDemand(n_total * sizeof(uint64_t));
            emb::Traffic t;
            t.dense_read_bytes = n_total * 16.0; // hash probes
            t.dense_read_bytes += static_cast<double>(slots_per_table_) *
                                  trace.num_tables * sizeof(uint16_t);
            t.dense_write_bytes += static_cast<double>(slots_per_table_) *
                                   trace.num_tables * sizeof(uint16_t);
            total[1].demand += latency_.gpuMemDemand(t);
        }
        // [Collect]: CPU gathers fills; GPU reads victims to staging.
        {
            emb::Traffic cpu = emb::gatherTraffic(fills, rb);
            total[2].demand += latency_.cpuDemand(cpu, CpuPath::Runtime);
            emb::Traffic gpu;
            gpu.sparse_read_bytes = evict_bytes;
            gpu.dense_write_bytes = evict_bytes;
            total[2].demand += latency_.gpuMemDemand(gpu);
        }
        // [Exchange]: full-duplex PCIe.
        {
            total[3].demand += latency_.pcieH2DDemand(fill_bytes);
            total[3].demand += latency_.pcieD2HDemand(evict_bytes);
        }
        // [Insert]: GPU writes fills into Storage; CPU applies the
        // write-backs to the embedding tables.
        {
            emb::Traffic gpu;
            gpu.dense_read_bytes = fill_bytes;
            gpu.sparse_write_bytes = fill_bytes;
            total[4].demand += latency_.gpuMemDemand(gpu);
            emb::Traffic cpu;
            cpu.dense_read_bytes = evict_bytes;
            cpu.sparse_write_bytes = evict_bytes;
            total[4].demand += latency_.cpuDemand(cpu, CpuPath::Runtime);
        }
        // [Train]: all embedding work at GPU memory speed + the MLPs.
        {
            emb::Traffic gpu;
            for (size_t t = 0; t < trace.num_tables; ++t) {
                const size_t unique = stats.unique(i, t);
                gpu += emb::embeddingForwardTraffic(n_per_table, batch, rb);
                gpu += emb::duplicateTraffic(batch, n_per_table, rb);
                gpu += emb::coalesceTraffic(n_per_table, unique, rb);
                // The optimizer update reads/writes state with the row.
                gpu += emb::scatterTraffic(unique, rb_state);
            }
            total[5].demand += latency_.gpuMemDemand(gpu);
            total[5].demand += latency_.gpuComputeDemand(flops);
            total[5].demand += latency_.pcieH2DDemand(
                static_cast<double>(batch) * (trace.dense_features + 1) *
                sizeof(float));
        }
    };

    // Warm-up batches run through the controllers (populating the
    // scratchpad toward steady state, as the paper's measurements do)
    // but contribute nothing to the timing accumulators. With
    // overlap_planning, batch i+1's plans fan out while batch i's
    // outcomes reduce into the accumulators on this thread.
    fanout.forEachBatch(
        controllers, dataset, warmup + iterations,
        options_.overlap_planning,
        [&](uint64_t i, const std::vector<TablePlanOutcome> &outcomes) {
            if (i >= warmup)
                account(i, outcomes);
        });

    // Average demands over the measured iterations.
    const double inv = 1.0 / static_cast<double>(iterations);
    for (auto &stage : total) {
        for (auto &s : stage.demand.seconds)
            s *= inv;
    }

    RunResult result;
    result.iterations = iterations;
    result.system_name = name();
    if (options_.pipelined) {
        const auto solution = sim::solvePipeline(total);
        result.seconds_per_iteration = solution.cycle_time;
        result.bottleneck = solution.bottleneck;
        for (size_t s = 0; s < total.size(); ++s)
            result.breakdown.add(total[s].name,
                                 solution.stage_latencies[s]);
    } else {
        result.seconds_per_iteration = sim::sequentialIterationTime(total);
        for (const auto &stage : total)
            result.breakdown.add(stage.name, stage.latency());
    }

    // Busy-time attribution: per retired iteration each stage's work
    // executes exactly once.
    double cpu_busy = 0.0, gpu_busy = 0.0;
    for (const auto &stage : total) {
        cpu_busy += stage.demand[sim::Resource::CpuDram];
        gpu_busy += stage.demand[sim::Resource::GpuHbm] +
                    stage.demand[sim::Resource::GpuCompute] +
                    stage.demand[sim::Resource::PcieH2D] +
                    stage.demand[sim::Resource::PcieD2H];
    }
    result.busy.iteration_seconds = result.seconds_per_iteration;
    result.busy.cpu_busy_seconds = cpu_busy;
    result.busy.gpu_busy_seconds = gpu_busy;

    result.hit_rate = total_ids == 0
                          ? 0.0
                          : static_cast<double>(total_hits) /
                                static_cast<double>(total_ids);
    double gpu_bytes = 0.0;
    for (const auto &controller : controllers) {
        gpu_bytes += static_cast<double>(controller.storage().storageBytes());
        gpu_bytes += static_cast<double>(controller.metadataBytes());
    }
    result.gpu_bytes = gpu_bytes;
    return result;
}

void
registerScratchPipeSystems(Registry &registry)
{
    registry.addEntry(
        {"scratchpipe", ScratchPipeSystem::kDescriptionPipelined,
         /*uses_cache_fraction=*/true,
         /*uses_scratchpipe_options=*/true,
         /*uses_serve_options=*/false,
         [](const ModelConfig &model, const sim::HardwareConfig &hw,
            const SystemSpec &spec) -> std::unique_ptr<System> {
             return std::make_unique<ScratchPipeSystem>(
                 model, hw, spec.scratchPipeOptions(true));
         }});
    registry.addEntry(
        {"strawman", ScratchPipeSystem::kDescriptionStrawman,
         /*uses_cache_fraction=*/true,
         /*uses_scratchpipe_options=*/true,
         /*uses_serve_options=*/false,
         [](const ModelConfig &model, const sim::HardwareConfig &hw,
            const SystemSpec &spec) -> std::unique_ptr<System> {
             return std::make_unique<ScratchPipeSystem>(
                 model, hw, spec.scratchPipeOptions(false));
         }});
}

} // namespace sp::sys
